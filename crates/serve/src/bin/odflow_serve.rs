//! `odflow_serve` — run the detection daemon from the command line.
//!
//! Hosts a single Abilene tenant (tenant index 0) and serves until a
//! drain control arrives on the wire. All failures exit with a message;
//! nothing in this binary panics.
//!
//! ```text
//! odflow_serve --udp 127.0.0.1:2055 --metrics 127.0.0.1:9100 --bins 288 --train 144
//! ```
//!
//! Flags: `--udp ADDR`, `--tcp ADDR`, `--metrics ADDR`, `--bins N`
//! (window length, default 288), `--train N` (online-detector training
//! prefix, default `bins/2`), `--name NAME` (tenant label),
//! `--checkpoint-dir DIR` (crash-safety checkpoints on every bin close),
//! `--recover` (resume from the newest valid checkpoint generation in
//! `--checkpoint-dir` instead of starting fresh). When neither `--udp`
//! nor `--tcp` is given, the `ODFLOW_SERVE_BIND` environment variable
//! supplies a default UDP bind address.

#![forbid(unsafe_code)]

use odflow_net::{AddressPlan, IngressResolver, Topology};
use odflow_serve::{Daemon, ServeConfig, TenantConfig, TenantEnd, TenantSpec};

fn main() {
    if let Err(e) = real_main() {
        eprintln!("odflow_serve: {e}");
        std::process::exit(1);
    }
}

fn real_main() -> Result<(), Box<dyn std::error::Error>> {
    let mut udp_bind: Option<String> = None;
    let mut tcp_bind: Option<String> = None;
    let mut metrics_bind: Option<String> = None;
    let mut bins: usize = 288;
    let mut train: Option<usize> = None;
    let mut name = "abilene".to_owned();
    let mut checkpoint_dir: Option<std::path::PathBuf> = None;
    let mut recover = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--udp" => udp_bind = Some(value("--udp")?),
            "--tcp" => tcp_bind = Some(value("--tcp")?),
            "--metrics" => metrics_bind = Some(value("--metrics")?),
            "--bins" => bins = value("--bins")?.parse()?,
            "--train" => train = Some(value("--train")?.parse()?),
            "--name" => name = value("--name")?,
            "--checkpoint-dir" => checkpoint_dir = Some(value("--checkpoint-dir")?.into()),
            "--recover" => recover = true,
            other => return Err(format!("unknown flag: {other}").into()),
        }
    }
    if udp_bind.is_none() && tcp_bind.is_none() {
        // lint:allow(env-read-containment) -- documented operator knob: ODFLOW_SERVE_BIND supplies the default UDP bind when no --udp/--tcp flag is passed
        if let Ok(addr) = std::env::var("ODFLOW_SERVE_BIND") {
            udp_bind = Some(addr);
        }
    }
    if udp_bind.is_none() && tcp_bind.is_none() {
        return Err("no listener configured: pass --udp or --tcp, or set ODFLOW_SERVE_BIND".into());
    }

    let topology = Topology::abilene();
    let plan = AddressPlan::synthetic(&topology);
    let routes = plan.build_route_table(1.0)?;
    let ingress = IngressResolver::synthetic(&topology);
    let mut tenant = TenantConfig::abilene(&name, 0, bins);
    if let Some(t) = train {
        tenant.train_bins = t;
    }

    let config = ServeConfig {
        udp_bind,
        tcp_bind,
        metrics_bind,
        tenants: vec![TenantSpec { config: tenant, topology, ingress, routes }],
        checkpoint_dir: checkpoint_dir.clone(),
        ..ServeConfig::default()
    };
    let daemon = if recover {
        let dir = checkpoint_dir
            .ok_or("--recover requires --checkpoint-dir to locate the generations")?;
        let (daemon, recoveries) = Daemon::recover(config, &dir)?;
        for r in &recoveries {
            match r.resumed_seq {
                Some(seq) => println!(
                    "tenant {}: resumed checkpoint generation {seq} ({} frames covered, {} slots rejected)",
                    r.tenant, r.frames_ingested, r.slots_rejected
                ),
                None => println!("tenant {}: no usable checkpoint, starting fresh", r.tenant),
            }
        }
        daemon
    } else {
        Daemon::bind(config)?
    };
    if let Some(addr) = daemon.udp_addr() {
        println!("listening udp {addr}");
    }
    if let Some(addr) = daemon.tcp_addr() {
        println!("listening tcp {addr}");
    }
    if let Some(addr) = daemon.metrics_addr() {
        println!("metrics http://{addr}/metrics");
    }

    let report = daemon.run();
    for end in &report.tenants {
        match end {
            TenantEnd::Flushed(flush) => {
                let bins_total = flush.outcome.quality.bin_records.len();
                let detections: usize = flush
                    .diagnosis
                    .as_ref()
                    .map_or(0, |d| d.analyses.iter().map(|(_, a)| a.detections.len()).sum());
                println!(
                    "tenant {}: flushed {bins_total} bins, {} live verdicts, {detections} batch detections",
                    flush.name,
                    flush.live_verdicts.len()
                );
                if let Some(reason) = &flush.diagnosis_error {
                    println!("tenant {}: batch diagnosis unavailable: {reason}", flush.name);
                }
            }
            TenantEnd::Failed { name, reason } => {
                println!("tenant {name}: flush failed: {reason}");
            }
            TenantEnd::Killed { name, point } => {
                println!("tenant {name}: killed at {point:?} (recover with --recover)");
            }
        }
    }
    Ok(())
}
