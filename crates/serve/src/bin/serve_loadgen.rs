//! `serve_loadgen` — deterministic loopback load generator.
//!
//! Renders a `paper_window` scenario as NetFlow v5 export frames and
//! replays them against a running `odflow_serve` daemon over UDP or TCP,
//! ending (by default) with the drain control so the daemon flushes.
//!
//! ```text
//! serve_loadgen --target 127.0.0.1:2055 --transport udp --bins 288 --seed 1
//! ```
//!
//! Flags: `--target ADDR` (required), `--transport udp|tcp` (default
//! udp), `--bins N` (default 288), `--seed N` (default 1), `--tenant N`
//! (envelope byte, default 0), `--no-drain` (skip the trailing drain
//! control).

#![forbid(unsafe_code)]

use odflow_gen::Scenario;
use odflow_serve::{replay_scenario, LoadGenConfig, Transport};
use std::net::SocketAddr;

fn main() {
    if let Err(e) = real_main() {
        eprintln!("serve_loadgen: {e}");
        std::process::exit(1);
    }
}

fn real_main() -> Result<(), Box<dyn std::error::Error>> {
    let mut target: Option<SocketAddr> = None;
    let mut transport = Transport::Udp;
    let mut bins: usize = 288;
    let mut seed: u64 = 1;
    let mut tenant: u8 = 0;
    let mut send_drain = true;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--target" => target = Some(value("--target")?.parse()?),
            "--transport" => {
                transport = match value("--transport")?.as_str() {
                    "udp" => Transport::Udp,
                    "tcp" => Transport::Tcp,
                    other => return Err(format!("unknown transport: {other}").into()),
                };
            }
            "--bins" => bins = value("--bins")?.parse()?,
            "--seed" => seed = value("--seed")?.parse()?,
            "--tenant" => tenant = value("--tenant")?.parse()?,
            "--no-drain" => send_drain = false,
            other => return Err(format!("unknown flag: {other}").into()),
        }
    }
    let Some(target) = target else {
        return Err("--target is required".into());
    };

    let scenario = Scenario::paper_window(seed, bins)?;
    let config = LoadGenConfig { tenant, send_drain, ..LoadGenConfig::new(transport) };
    let report = replay_scenario(&scenario, target, &config)?;
    println!(
        "sent {} frames ({} bytes) over {:?}; drain={}",
        report.frames_sent, report.bytes_sent, transport, report.drain_sent
    );
    Ok(())
}
