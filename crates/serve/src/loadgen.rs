//! Deterministic loopback load generator.
//!
//! Renders a scenario's NetFlow v5 export frames bin by bin through the
//! existing [`TraceGenerator`] — per-exporter sequence continuity and all
//! — optionally degrades the stream through a [`FaultSchedule`], and
//! sends every surviving frame to a daemon over a real socket. The frame
//! *content* is identical to what the batch wire path feeds
//! `ingest_datagrams`, which is what makes daemon-vs-batch equivalence
//! testable end to end.
//!
//! Over TCP the stream is ordered and reliable, so a trailing
//! [`CONTROL_DRAIN`](crate::wire::CONTROL_DRAIN) message is a precise
//! end-of-input barrier: the daemon processes it after every preceding
//! frame. Over UDP, delivery and ordering are the transport's usual
//! best-effort — drops are the *documented* lossy-collector behavior the
//! quality accounting exists to measure.

use crate::daemon::splitmix64;
use crate::wire::{self, CONTROL_TENANT};
use crate::ServeError;
use odflow_gen::{FaultSchedule, FaultStormStats, Scenario, TraceGenerator};
use std::io::Write;
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::time::Duration;

/// Which transport to replay over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// One envelope datagram per frame.
    Udp,
    /// One length-prefixed message per frame, single connection.
    Tcp,
}

/// Load generator configuration.
#[derive(Debug)]
pub struct LoadGenConfig {
    /// Tenant envelope byte the frames are addressed to.
    pub tenant: u8,
    /// Transport to replay over.
    pub transport: Transport,
    /// Optional deterministic fault schedule degrading the frame stream
    /// before it hits the wire.
    pub faults: Option<FaultSchedule>,
    /// Send the drain control after the last frame (graceful shutdown).
    pub send_drain: bool,
    /// TCP connect attempts before giving up. A daemon that is still
    /// binding — or restarting after a crash — refuses the first few
    /// connects; the generator retries instead of failing the replay.
    pub connect_attempts: u32,
    /// Base delay between connect attempts; doubles per attempt, plus
    /// deterministic seeded jitter of up to one base delay.
    pub connect_backoff: Duration,
    /// Seed of the deterministic connect-retry jitter.
    pub connect_jitter_seed: u64,
}

impl LoadGenConfig {
    /// Replay to tenant 0 over `transport`, clean stream, with a
    /// trailing drain.
    #[must_use]
    pub fn new(transport: Transport) -> Self {
        LoadGenConfig {
            tenant: 0,
            transport,
            faults: None,
            send_drain: true,
            connect_attempts: 10,
            connect_backoff: Duration::from_millis(10),
            connect_jitter_seed: 0x10ad_6e4e_7d4e_7e57,
        }
    }
}

/// Connects to `target` with bounded seeded-jitter retry-with-backoff:
/// attempt `k` (from 0) sleeps `backoff * 2^min(k, 5)` plus jitter before
/// retrying, tolerating a daemon still binding or mid-restart.
fn connect_with_retry(target: SocketAddr, config: &LoadGenConfig) -> Result<TcpStream, ServeError> {
    let attempts = config.connect_attempts.max(1);
    let mut last_err = None;
    for attempt in 0..attempts {
        match TcpStream::connect(target) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
        if attempt + 1 < attempts {
            let exp = attempt.min(5);
            let base = config.connect_backoff.saturating_mul(1 << exp);
            let span = u64::try_from(config.connect_backoff.as_nanos()).unwrap_or(u64::MAX).max(1);
            let jitter = splitmix64(config.connect_jitter_seed ^ u64::from(attempt)) % span;
            std::thread::sleep(base + Duration::from_nanos(jitter));
        }
    }
    Err(ServeError::Io(last_err.unwrap_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "no connect attempt made")
    })))
}

/// What a replay actually put on the wire.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// Frames rendered by the generator (before faults).
    pub frames_rendered: u64,
    /// Frames sent after fault degradation.
    pub frames_sent: u64,
    /// Envelope bytes written to the socket.
    pub bytes_sent: u64,
    /// Whether the drain control was sent.
    pub drain_sent: bool,
}

/// Replays every bin of `scenario` against a daemon at `target`.
///
/// Frames go out in the exact order the batch path would decode them:
/// bins ascending, PoP-exporter order within a bin, with `flow_sequence`
/// continuity carried across bins.
///
/// # Errors
///
/// [`ServeError::Io`] on socket setup or (TCP) write failure. UDP send
/// errors on individual datagrams also surface as errors — the loopback
/// load generator has no reason to lose frames silently on the *send*
/// side.
pub fn replay_scenario(
    scenario: &Scenario,
    target: SocketAddr,
    config: &LoadGenConfig,
) -> Result<LoadReport, ServeError> {
    let generator: TraceGenerator<'_> = scenario.generator();
    let mut seqs = vec![0u32; scenario.topology.num_pops()];
    let mut storm = FaultStormStats::default();
    let mut report = LoadReport::default();

    let mut sink = match config.transport {
        Transport::Udp => {
            let socket = UdpSocket::bind("127.0.0.1:0")?;
            socket.connect(target)?;
            Sink::Udp(socket)
        }
        Transport::Tcp => Sink::Tcp(connect_with_retry(target, config)?),
    };

    for bin in 0..scenario.config.num_bins {
        let mut frames = generator.frames_for_bin(bin, &mut seqs);
        report.frames_rendered += frames.len() as u64;
        if let Some(schedule) = &config.faults {
            frames = schedule.apply_to_frames(bin, frames, &mut storm);
        }
        for frame in &frames {
            report.bytes_sent += sink.send(config.tenant, frame)?;
            report.frames_sent += 1;
        }
    }
    if config.send_drain {
        sink.send(CONTROL_TENANT, wire::CONTROL_DRAIN)?;
        report.drain_sent = true;
    }
    sink.finish()?;
    Ok(report)
}

/// Replays pre-rendered frames (no generator, no faults) against a
/// daemon at `target` — the recovery path's tool for resending the
/// unconsumed suffix `frames[cursor..]` of an interrupted run.
///
/// # Errors
///
/// [`ServeError::Io`] on socket setup or send failure, as
/// [`replay_scenario`].
pub fn replay_frames(
    frames: &[Vec<u8>],
    target: SocketAddr,
    config: &LoadGenConfig,
) -> Result<LoadReport, ServeError> {
    let mut report = LoadReport::default();
    let mut sink = match config.transport {
        Transport::Udp => {
            let socket = UdpSocket::bind("127.0.0.1:0")?;
            socket.connect(target)?;
            Sink::Udp(socket)
        }
        Transport::Tcp => Sink::Tcp(connect_with_retry(target, config)?),
    };
    for frame in frames {
        report.frames_rendered += 1;
        report.bytes_sent += sink.send(config.tenant, frame)?;
        report.frames_sent += 1;
    }
    if config.send_drain {
        sink.send(CONTROL_TENANT, wire::CONTROL_DRAIN)?;
        report.drain_sent = true;
    }
    sink.finish()?;
    Ok(report)
}

/// The two socket flavors behind one send call.
enum Sink {
    Udp(UdpSocket),
    Tcp(TcpStream),
}

impl Sink {
    /// Sends one enveloped frame; returns envelope bytes written.
    fn send(&mut self, tenant: u8, frame: &[u8]) -> Result<u64, ServeError> {
        match self {
            Sink::Udp(socket) => {
                let payload = wire::encode_datagram(tenant, frame);
                socket.send(&payload)?;
                Ok(payload.len() as u64)
            }
            Sink::Tcp(stream) => {
                let message = wire::encode_message(tenant, frame);
                stream.write_all(&message)?;
                Ok(message.len() as u64)
            }
        }
    }

    /// Flushes and cleanly ends the stream (TCP half-close so the peer
    /// sees EOF after the last byte).
    fn finish(self) -> Result<(), ServeError> {
        if let Sink::Tcp(mut stream) = self {
            stream.flush()?;
            stream.shutdown(std::net::Shutdown::Write)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::MessageReader;
    use std::io::Read;
    use std::net::TcpListener;

    /// Replay a small scenario at a plain TCP sink and reassemble the
    /// stream: every rendered frame arrives, in order, drain last.
    #[test]
    fn tcp_replay_delivers_every_frame_in_order() {
        let scenario = Scenario::paper_window(3, 4).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let target = listener.local_addr().unwrap();

        let pool = scoped_pool::Pool::new(1);
        let mut report = LoadReport::default();
        let mut messages: Vec<(u8, Vec<u8>)> = Vec::new();
        pool.scoped(|scope| {
            let messages_ref = &mut messages;
            scope.execute(move || {
                let (mut stream, _) = listener.accept().unwrap();
                let mut reader = MessageReader::new();
                let mut buf = [0u8; 8192];
                loop {
                    let n = stream.read(&mut buf).unwrap();
                    if n == 0 {
                        break;
                    }
                    reader.extend(&buf[..n]);
                    while let Some(m) = reader.next_message().unwrap() {
                        messages_ref.push(m);
                    }
                }
            });
            report =
                replay_scenario(&scenario, target, &LoadGenConfig::new(Transport::Tcp)).unwrap();
        });
        pool.shutdown();

        assert_eq!(report.frames_rendered, report.frames_sent);
        assert!(report.drain_sent);
        assert_eq!(messages.len() as u64, report.frames_sent + 1, "frames plus drain");
        let (last_tenant, last_payload) = messages.last().unwrap();
        assert!(wire::is_drain_control(*last_tenant, last_payload));
        // The frame stream equals a direct render with the same seqs.
        let generator = scenario.generator();
        let mut seqs = vec![0u32; scenario.topology.num_pops()];
        let direct: Vec<Vec<u8>> =
            (0..4).flat_map(|b| generator.frames_for_bin(b, &mut seqs)).collect();
        let received: Vec<&Vec<u8>> =
            messages[..messages.len() - 1].iter().map(|(_, f)| f).collect();
        assert_eq!(direct.len(), received.len());
        for (d, r) in direct.iter().zip(received) {
            assert_eq!(d, r);
        }
    }
}
