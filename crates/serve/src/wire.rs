//! The daemon's socket envelope.
//!
//! NetFlow v5 frames carry no tenant identity, so the daemon wraps each
//! frame in a one-byte tenant prefix:
//!
//! ```text
//! UDP datagram:  [tenant u8][netflow v5 frame ...]
//! TCP message:   [tenant u8][len u32 BE][len bytes of netflow v5 frame]
//! ```
//!
//! The TCP length prefix delimits messages on the byte stream; the frame
//! *content* is still validated against its own header-declared record
//! count by [`odflow_flow::netflow::check_frame_bounds`] inside the
//! lossy decoder — both transports converge on that single
//! frame-boundary authority, so a frame that quarantines as
//! truncated/oversized over UDP quarantines identically over TCP.
//!
//! Tenant byte [`CONTROL_TENANT`] addresses the daemon itself: a payload
//! of [`CONTROL_DRAIN`] requests a graceful drain-and-flush shutdown.

use odflow_flow::netflow::{frame_wire_len, MAX_RECORDS_PER_DATAGRAM};

/// Reserved tenant byte addressing the daemon's control channel.
pub const CONTROL_TENANT: u8 = 0xFF;

/// Control payload requesting a graceful drain-and-flush shutdown.
pub const CONTROL_DRAIN: &[u8] = b"drain";

/// Upper bound on a TCP message's declared payload length: four times
/// the largest valid v5 frame. The headroom is deliberate — oversized or
/// garbled frames must still be *deliverable* so they reach the
/// quarantine accounting; only a declared length beyond this bound is a
/// framing-protocol violation that drops the connection.
pub const MAX_MESSAGE_LEN: usize = frame_wire_len(MAX_RECORDS_PER_DATAGRAM as u16) * 4;

/// Bytes of TCP message overhead before the payload (tenant + length).
pub const MESSAGE_PREFIX_LEN: usize = 5;

/// Wraps one frame as a UDP datagram payload.
#[must_use]
pub fn encode_datagram(tenant: u8, frame: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + frame.len());
    out.push(tenant);
    out.extend_from_slice(frame);
    out
}

/// Splits a received UDP payload into its tenant byte and frame, or
/// `None` for an empty datagram.
#[must_use]
pub fn decode_datagram(payload: &[u8]) -> Option<(u8, &[u8])> {
    let (&tenant, frame) = payload.split_first()?;
    Some((tenant, frame))
}

/// Wraps one frame as a length-prefixed TCP message.
#[must_use]
pub fn encode_message(tenant: u8, frame: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MESSAGE_PREFIX_LEN + frame.len());
    out.push(tenant);
    out.extend_from_slice(&(frame.len() as u32).to_be_bytes());
    out.extend_from_slice(frame);
    out
}

/// A declared TCP message length beyond [`MAX_MESSAGE_LEN`] — the one
/// framing fault that cannot be quarantined frame-by-frame, because the
/// stream offset is no longer trustworthy. The connection is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OversizedMessage {
    /// The length the prefix declared.
    pub declared: usize,
}

impl std::fmt::Display for OversizedMessage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "declared message length {} exceeds the {MAX_MESSAGE_LEN}-byte bound",
            self.declared
        )
    }
}

/// Incremental parser for the length-prefixed TCP stream. Feed it bytes
/// as they arrive; it yields complete `(tenant, frame)` messages.
///
/// Buffering is bounded by construction: an incomplete message holds at
/// most [`MESSAGE_PREFIX_LEN`]` + `[`MAX_MESSAGE_LEN`] bytes, because a
/// larger declared length errors before any payload is buffered.
#[derive(Debug, Default)]
pub struct MessageReader {
    buf: Vec<u8>,
}

impl MessageReader {
    /// An empty reader.
    #[must_use]
    pub fn new() -> Self {
        MessageReader::default()
    }

    /// Appends bytes read off the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered toward the next message.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// The next complete `(tenant, frame)` message, `Ok(None)` while the
    /// buffer holds only a partial message.
    ///
    /// # Errors
    ///
    /// [`OversizedMessage`] when the length prefix declares more than
    /// [`MAX_MESSAGE_LEN`] bytes; the caller must drop the connection
    /// (and count it) — the stream can no longer be re-synchronized.
    pub fn next_message(&mut self) -> Result<Option<(u8, Vec<u8>)>, OversizedMessage> {
        if self.buf.len() < MESSAGE_PREFIX_LEN {
            return Ok(None);
        }
        let tenant = self.buf[0];
        let declared =
            u32::from_be_bytes([self.buf[1], self.buf[2], self.buf[3], self.buf[4]]) as usize;
        if declared > MAX_MESSAGE_LEN {
            return Err(OversizedMessage { declared });
        }
        let total = MESSAGE_PREFIX_LEN + declared;
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame = self.buf[MESSAGE_PREFIX_LEN..total].to_vec();
        self.buf.drain(..total);
        Ok(Some((tenant, frame)))
    }
}

/// `true` when a `(tenant, payload)` message is the drain control.
#[must_use]
pub fn is_drain_control(tenant: u8, payload: &[u8]) -> bool {
    tenant == CONTROL_TENANT && payload == CONTROL_DRAIN
}

#[cfg(test)]
mod tests {
    use super::*;
    use odflow_flow::netflow::{check_frame_bounds, HEADER_LEN};
    use odflow_flow::{QuarantineClass, QuarantineStats};

    #[test]
    fn datagram_envelope_roundtrip() {
        let d = encode_datagram(3, b"abc");
        assert_eq!(decode_datagram(&d), Some((3u8, &b"abc"[..])));
        assert_eq!(decode_datagram(&[]), None);
        assert_eq!(decode_datagram(&[7]), Some((7u8, &b""[..])));
    }

    #[test]
    fn message_reader_reassembles_split_stream() {
        let mut r = MessageReader::new();
        let m1 = encode_message(0, &[1, 2, 3]);
        let m2 = encode_message(1, &[9; 100]);
        let stream: Vec<u8> = m1.iter().chain(&m2).copied().collect();
        // Feed one byte at a time — worst-case fragmentation.
        let mut got = Vec::new();
        for &b in &stream {
            r.extend(&[b]);
            while let Some(m) = r.next_message().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, vec![(0u8, vec![1, 2, 3]), (1u8, vec![9; 100])]);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn oversized_declared_length_is_a_protocol_error() {
        let mut r = MessageReader::new();
        let mut bad = vec![0u8];
        bad.extend_from_slice(&(u32::MAX).to_be_bytes());
        r.extend(&bad);
        let err = r.next_message().unwrap_err();
        assert_eq!(err.declared, u32::MAX as usize);
        assert!(err.to_string().contains("bound"));
    }

    /// The satellite contract: a frame mis-sized relative to its own
    /// header count quarantines identically whether it arrived as a UDP
    /// datagram or inside a TCP message — both paths reach
    /// `check_frame_bounds` through `decode_datagram_lossy`.
    #[test]
    fn both_transports_share_the_frame_boundary_authority() {
        // A syntactically complete header declaring 2 records with a
        // 1-record payload: TruncatedFrame on either transport.
        let mut frame = vec![0u8; HEADER_LEN + 48];
        frame[1] = 5; // version
        frame[3] = 2; // count
        assert_eq!(check_frame_bounds(2, 48), Some(QuarantineClass::TruncatedFrame));

        // Via the UDP envelope.
        let dgram = encode_datagram(0, &frame);
        let (_, udp_frame) = decode_datagram(&dgram).unwrap();
        let mut q_udp = QuarantineStats::default();
        assert!(odflow_flow::netflow::decode_datagram_lossy(udp_frame, &mut q_udp).is_none());

        // Via the TCP message framing.
        let mut r = MessageReader::new();
        r.extend(&encode_message(0, &frame));
        let (_, tcp_frame) = r.next_message().unwrap().unwrap();
        let mut q_tcp = QuarantineStats::default();
        assert!(odflow_flow::netflow::decode_datagram_lossy(&tcp_frame, &mut q_tcp).is_none());

        assert_eq!(q_udp.truncated_frame, 1);
        assert_eq!(q_tcp.truncated_frame, 1);
        assert_eq!(q_udp, q_tcp);
    }

    #[test]
    fn drain_control_recognized() {
        assert!(is_drain_control(CONTROL_TENANT, CONTROL_DRAIN));
        assert!(!is_drain_control(0, CONTROL_DRAIN));
        assert!(!is_drain_control(CONTROL_TENANT, b"stop"));
    }
}
