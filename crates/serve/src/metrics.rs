//! Lock-free operational counters and the `/metrics` text rendering.
//!
//! Every counter is an `AtomicU64` bumped with relaxed ordering — the
//! hot path never takes a lock to observe itself, and readers accept
//! momentarily torn cross-counter views (each individual counter is
//! exact). Rendering produces a Prometheus-flavoured plain-text page:
//! one `name{tenant="..."} value` line per tenant counter plus daemon
//! totals.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The daemon's single clock read, wrapped so the ambient-nondeterminism
/// lint audit has exactly one sanctioned call site. Timing here feeds
/// operator metrics only — never detection math, which stays driven by
/// the `unix_secs` timestamps inside the frames themselves.
#[must_use]
pub fn monotonic_now() -> Instant {
    // lint:allow(no-ambient-nondeterminism) -- operator-facing metrics timer; detection math is driven by frame-embedded timestamps, never by this clock
    Instant::now()
}

/// Number of power-of-two latency buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` nanoseconds, with the last bucket open-ended. 40
/// buckets reach ~18 minutes, far past any plausible enqueue latency.
const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed power-of-two-bucket latency histogram over nanoseconds.
///
/// `record` is wait-free (one relaxed `fetch_add`); `quantile` walks the
/// 40 buckets and reports the upper bound of the bucket containing the
/// requested rank — a ≤ 2× overestimate, which is plenty for a p99 gauge.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS] }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one sample, in nanoseconds.
    pub fn record(&self, nanos: u64) {
        let idx = if nanos == 0 {
            0
        } else {
            ((63 - u64::leading_zeros(nanos) as u64) as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Upper bound (nanoseconds) of the bucket containing the `q`
    /// quantile (`q` in `[0, 1]`), or 0 with no samples.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }
}

/// Per-tenant pipeline counters, shared between the admission path, the
/// tenant worker, and the metrics renderer.
#[derive(Debug, Default)]
pub struct TenantCounters {
    /// Frames addressed to this tenant, whether or not admitted.
    pub frames_offered: AtomicU64,
    /// Frames accepted into the tenant queue.
    pub frames_enqueued: AtomicU64,
    /// Frames shed because the queue was at capacity (backpressure).
    pub frames_dropped_backpressure: AtomicU64,
    /// Frames the lossy decoder quarantined (any class).
    pub frames_quarantined: AtomicU64,
    /// Flow records decoded and pushed toward the binner.
    pub records_decoded: AtomicU64,
    /// Records the shard could not place (resolver failures beyond the
    /// quiet out-of-window accounting).
    pub ingest_errors: AtomicU64,
    /// Flows the exporter sequence tracker inferred as lost upstream.
    pub exporter_lost_flows: AtomicU64,
    /// Bins closed and pushed through the online detector.
    pub bins_closed: AtomicU64,
    /// SPE threshold crossings reported by the online detector.
    pub alarms_spe: AtomicU64,
    /// T² threshold crossings reported by the online detector.
    pub alarms_t2: AtomicU64,
    /// Verdicts produced while the pipeline was degraded.
    pub verdicts_degraded: AtomicU64,
    /// Current queue depth (gauge, stored not accumulated).
    pub queue_depth: AtomicU64,
    /// High-water mark of the queue depth.
    pub queue_depth_peak: AtomicU64,
    /// Highest bin index the tenant's watermark has reached (gauge).
    pub watermark_bin: AtomicU64,
    /// Nanoseconds spent in frame decode.
    pub decode_nanos: AtomicU64,
    /// Nanoseconds spent pushing records into the shard.
    pub ingest_nanos: AtomicU64,
    /// Nanoseconds spent closing bins through the detector.
    pub detect_nanos: AtomicU64,
    /// Checkpoint generations durably written.
    pub checkpoints: AtomicU64,
    /// Worker restarts after a contained panic.
    pub restarts: AtomicU64,
    /// 1 once the tenant was quarantined for panicking persistently
    /// (gauge; other tenants keep running).
    pub quarantined: AtomicU64,
}

impl TenantCounters {
    /// Relaxed-load snapshot of one counter.
    #[must_use]
    pub fn get(c: &AtomicU64) -> u64 {
        c.load(Ordering::Relaxed)
    }

    /// Bumps a counter by `n`.
    pub fn add(c: &AtomicU64, n: u64) {
        c.fetch_add(n, Ordering::Relaxed);
    }

    /// Stores a gauge value.
    pub fn set(c: &AtomicU64, v: u64) {
        c.store(v, Ordering::Relaxed);
    }

    /// Raises a high-water-mark gauge to at least `v`.
    pub fn raise(c: &AtomicU64, v: u64) {
        c.fetch_max(v, Ordering::Relaxed);
    }

    /// Bins the watermark has passed but the worker has not yet closed —
    /// the tenant's ingest lag in bins.
    #[must_use]
    pub fn bin_lag(&self) -> u64 {
        Self::get(&self.watermark_bin).saturating_sub(Self::get(&self.bins_closed))
    }
}

/// Daemon-wide counters plus the per-tenant counter blocks.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// UDP datagrams received.
    pub udp_datagrams: AtomicU64,
    /// Complete TCP messages parsed off streams.
    pub tcp_messages: AtomicU64,
    /// TCP connections accepted.
    pub tcp_connections: AtomicU64,
    /// Envelope-level rejects: empty datagrams, oversized message
    /// declarations (connection dropped).
    pub envelope_errors: AtomicU64,
    /// Frames addressed to a tenant index the daemon does not host.
    pub unknown_tenant: AtomicU64,
    /// Socket read errors absorbed on the hot path.
    pub io_errors: AtomicU64,
    /// Control messages honoured (drain requests).
    pub control_messages: AtomicU64,
    /// Metrics clients reaped for idling or trickling past the read
    /// deadline without completing a request.
    pub metrics_clients_reaped: AtomicU64,
    /// Latency from socket admission to worker dequeue.
    pub enqueue_latency: LatencyHistogram,
    /// One counter block per hosted tenant, in tenant-index order.
    pub tenants: Vec<(String, Arc<TenantCounters>)>,
}

impl ServeMetrics {
    /// Metrics for `names` tenants, counters zeroed.
    #[must_use]
    pub fn new(names: &[String]) -> Self {
        ServeMetrics {
            tenants: names
                .iter()
                .map(|n| (n.clone(), Arc::new(TenantCounters::default())))
                .collect(),
            ..ServeMetrics::default()
        }
    }

    /// The counter block for tenant index `idx`.
    #[must_use]
    pub fn tenant(&self, idx: usize) -> Option<&Arc<TenantCounters>> {
        self.tenants.get(idx).map(|(_, c)| c)
    }

    /// Renders the plain-text metrics page served at `GET /metrics`.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        let g = TenantCounters::get;
        let _ = writeln!(out, "odflow_serve_udp_datagrams_total {}", g(&self.udp_datagrams));
        let _ = writeln!(out, "odflow_serve_tcp_messages_total {}", g(&self.tcp_messages));
        let _ = writeln!(out, "odflow_serve_tcp_connections_total {}", g(&self.tcp_connections));
        let _ = writeln!(out, "odflow_serve_envelope_errors_total {}", g(&self.envelope_errors));
        let _ = writeln!(out, "odflow_serve_unknown_tenant_total {}", g(&self.unknown_tenant));
        let _ = writeln!(out, "odflow_serve_io_errors_total {}", g(&self.io_errors));
        let _ = writeln!(out, "odflow_serve_control_messages_total {}", g(&self.control_messages));
        let _ = writeln!(
            out,
            "odflow_serve_metrics_clients_reaped_total {}",
            g(&self.metrics_clients_reaped)
        );
        let _ = writeln!(
            out,
            "odflow_serve_enqueue_latency_p99_nanos {}",
            self.enqueue_latency.quantile(0.99)
        );
        let _ = writeln!(
            out,
            "odflow_serve_enqueue_latency_samples_total {}",
            self.enqueue_latency.count()
        );
        for (name, c) in &self.tenants {
            let mut line = |metric: &str, value: u64| {
                let _ = writeln!(out, "odflow_serve_tenant_{metric}{{tenant=\"{name}\"}} {value}");
            };
            line("frames_offered_total", g(&c.frames_offered));
            line("frames_enqueued_total", g(&c.frames_enqueued));
            line("frames_dropped_backpressure_total", g(&c.frames_dropped_backpressure));
            line("frames_quarantined_total", g(&c.frames_quarantined));
            line("records_decoded_total", g(&c.records_decoded));
            line("ingest_errors_total", g(&c.ingest_errors));
            line("exporter_lost_flows_total", g(&c.exporter_lost_flows));
            line("bins_closed_total", g(&c.bins_closed));
            line("alarms_spe_total", g(&c.alarms_spe));
            line("alarms_t2_total", g(&c.alarms_t2));
            line("verdicts_degraded_total", g(&c.verdicts_degraded));
            line("queue_depth", g(&c.queue_depth));
            line("queue_depth_peak", g(&c.queue_depth_peak));
            line("watermark_bin", g(&c.watermark_bin));
            line("bin_lag", c.bin_lag());
            line("decode_nanos_total", g(&c.decode_nanos));
            line("ingest_nanos_total", g(&c.ingest_nanos));
            line("detect_nanos_total", g(&c.detect_nanos));
            line("checkpoints_total", g(&c.checkpoints));
            line("restarts_total", g(&c.restarts));
            line("quarantined", g(&c.quarantined));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), 0, "empty histogram reads zero");
        for _ in 0..99 {
            h.record(1_000); // bucket ⌊log2 1000⌋ = 9 → bound 2^10
        }
        h.record(1 << 20); // one slow outlier → bound 2^21
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), 1 << 10);
        assert_eq!(h.quantile(0.99), 1 << 10);
        assert_eq!(h.quantile(1.0), 1 << 21);
        h.record(0); // zero maps to the first bucket, no underflow
        assert_eq!(h.count(), 101);
    }

    #[test]
    fn bin_lag_is_watermark_minus_closed() {
        let c = TenantCounters::default();
        TenantCounters::raise(&c.watermark_bin, 7);
        TenantCounters::add(&c.bins_closed, 5);
        assert_eq!(c.bin_lag(), 2);
        TenantCounters::add(&c.bins_closed, 5);
        assert_eq!(c.bin_lag(), 0, "lag saturates at zero");
    }

    #[test]
    fn render_emits_per_tenant_lines() {
        let m = ServeMetrics::new(&["t0".to_owned(), "edge".to_owned()]);
        TenantCounters::add(&m.tenant(0).unwrap().frames_offered, 99);
        TenantCounters::add(&m.udp_datagrams, 3);
        let page = m.render();
        assert!(page.contains("odflow_serve_udp_datagrams_total 3"));
        assert!(page.contains("odflow_serve_tenant_frames_offered_total{tenant=\"t0\"} 99"));
        assert!(page.contains("odflow_serve_tenant_frames_offered_total{tenant=\"edge\"} 0"));
        assert!(page.contains("odflow_serve_tenant_bin_lag{tenant=\"edge\"} 0"));
        assert!(m.tenant(2).is_none());
    }
}
