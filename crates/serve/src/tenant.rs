//! One tenant's streaming pipeline: frames in, bins closed, verdicts out.
//!
//! A tenant is one monitored mesh — its own topology, routing state, and
//! detection configuration. The daemon runs each tenant's pipeline on a
//! dedicated worker thread; everything here is therefore plain `&mut
//! self` single-threaded code, which is what makes the end state
//! deterministic: frames decode **serially, in arrival order** (the
//! quarantine and exporter-sequence accounting are order-sensitive) and
//! records fill a **single full-window shard**, the degenerate grain the
//! workspace's equivalence tests pin to the batch path.
//!
//! Bins close as the export-timestamp watermark passes their end; each
//! closed bin's bytes row feeds the [`OnlineDetector`] (once a training
//! prefix has accumulated). At drain, [`TenantPipeline::flush`] merges
//! the shard into the same [`IngestOutcome`] → repair → `diagnose`
//! endgame as batch `run_scenario`, so daemon and batch verdicts are
//! directly comparable.

use crate::checkpoint::{self, CheckpointStore, CrashPoint, CrashSchedule, PipelineState};
use crate::metrics::{monotonic_now, TenantCounters};
use crate::ServeError;
use odflow_flow::netflow::decode_datagram_lossy;
use odflow_flow::{
    BinShard, BinStatus, DataQuality, ExporterSeqStats, IngestOutcome, PipelineConfig,
    RepairPolicy, ShardedIngest, TrafficType,
};
use odflow_linalg::Matrix;
use odflow_subspace::{
    diagnose, Diagnosis, OnlineDetector, StatisticKind, StreamVerdict, SubspaceConfig,
};
use std::sync::Arc;

/// Static configuration of one tenant's pipeline.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Tenant name, used as the metrics label.
    pub name: String,
    /// Ingest window/binning configuration (sampler fields unused — the
    /// daemon consumes pre-sampled export records).
    pub pipeline: PipelineConfig,
    /// Subspace detection configuration, for both the online detector and
    /// the flush-time batch diagnosis.
    pub subspace: SubspaceConfig,
    /// Bins of training prefix before the online detector fits; `0`
    /// disables online detection (flush-time diagnosis still runs).
    pub train_bins: usize,
    /// Online detector refit cadence (observations; `0` = never refit).
    pub refit_every: usize,
    /// Capacity of the tenant's frame queue, in frames.
    pub queue_frames: usize,
    /// Outage-repair policy applied at flush.
    pub repair: RepairPolicy,
    /// Deterministic chaos-injection schedule ([`CrashSchedule`]) — the
    /// kill-point test harness. `None` (production) injects nothing. Held
    /// as an `Arc` so a restarted worker shares the consumed one-shot
    /// rules of its predecessor.
    pub crash: Option<Arc<CrashSchedule>>,
}

impl TenantConfig {
    /// The paper's Abilene configuration: 5-minute bins from `start_secs`,
    /// online detection after a `num_bins / 2` training prefix.
    #[must_use]
    pub fn abilene(name: &str, start_secs: u64, num_bins: usize) -> TenantConfig {
        TenantConfig {
            name: name.to_owned(),
            pipeline: PipelineConfig::abilene(start_secs, num_bins),
            subspace: SubspaceConfig::default(),
            train_bins: num_bins / 2,
            refit_every: 0,
            queue_frames: 1024,
            repair: RepairPolicy::default(),
            crash: None,
        }
    }
}

/// Everything a drained tenant hands back.
#[derive(Debug)]
pub struct TenantFlush {
    /// The tenant's name.
    pub name: String,
    /// The merged, repaired ingest outcome — matrices plus quality
    /// accounting, exactly as the batch wire path produces.
    pub outcome: IngestOutcome,
    /// Flush-time batch diagnosis over the full window, when it succeeded.
    pub diagnosis: Option<Diagnosis>,
    /// Why the diagnosis failed, when it did (e.g. backpressure shed so
    /// many frames the matrices degenerated). The daemon still returns the
    /// matrices and counters — a partial flush beats a lost one.
    pub diagnosis_error: Option<String>,
    /// Verdicts the online detector issued while the daemon ran, in bin
    /// order.
    pub live_verdicts: Vec<StreamVerdict>,
}

/// The per-tenant streaming state machine. Owned by exactly one worker
/// thread; all cross-thread observation goes through the shared
/// [`TenantCounters`].
#[derive(Debug)]
pub struct TenantPipeline {
    config: TenantConfig,
    engine: ShardedIngest,
    shard: BinShard,
    /// Wire-path accounting (quarantine + exporter sequences); grafted
    /// onto the merged outcome at flush, mirroring `ingest_datagrams`.
    quality: DataQuality,
    detector: Option<OnlineDetector>,
    /// Next bin index awaiting closure.
    next_close: usize,
    /// Highest export timestamp seen (trace-epoch seconds).
    watermark_secs: u64,
    live_verdicts: Vec<StreamVerdict>,
    counters: Arc<TenantCounters>,
    /// Frames consumed off the queue so far — the checkpoint replay
    /// cursor. Counts *every* offered frame, quarantined and duplicate
    /// ones included, so `frames[frames_ingested..]` is always the exact
    /// unconsumed suffix.
    frames_ingested: u64,
    /// Sequence number the next checkpoint generation will carry.
    ckpt_seq: u64,
    /// Checkpoint destination; `None` disables checkpointing.
    store: Option<CheckpointStore>,
}

impl TenantPipeline {
    /// Builds the pipeline over its routing state.
    ///
    /// # Errors
    ///
    /// [`ServeError::Flow`] on invalid window/OD-space configuration.
    pub fn new(
        config: TenantConfig,
        topology: &odflow_net::Topology,
        ingress: odflow_net::IngressResolver,
        routes: odflow_net::RouteTable,
    ) -> Result<TenantPipeline, ServeError> {
        let engine = ShardedIngest::new(config.pipeline, topology, ingress, routes)?;
        let num_bins = engine.num_bins();
        let shard = engine.make_shard(0..num_bins)?;
        Ok(TenantPipeline {
            config,
            engine,
            shard,
            quality: DataQuality::clean(num_bins),
            detector: None,
            next_close: 0,
            watermark_secs: 0,
            live_verdicts: Vec::new(),
            counters: Arc::new(TenantCounters::default()),
            frames_ingested: 0,
            ckpt_seq: 0,
            store: None,
        })
    }

    /// Rebuilds a pipeline from a checkpoint snapshot, resuming exactly
    /// where the snapshot was cut: same accumulated cells, same exporter
    /// sequence context, same fitted detector floats, same watermark.
    /// Replaying the original frame stream from
    /// [`PipelineState::frames_ingested`] onward then reproduces the
    /// uninterrupted run bit for bit.
    ///
    /// `counters` lets a supervisor hand the successor worker its
    /// predecessor's shared counter block; pass a fresh block for a
    /// process-level recovery.
    ///
    /// # Errors
    ///
    /// [`ServeError::Flow`] on invalid window configuration or a snapshot
    /// whose shard shape disagrees with it; [`ServeError::Config`] on an
    /// internally inconsistent detector snapshot.
    pub fn restore(
        config: TenantConfig,
        topology: &odflow_net::Topology,
        ingress: odflow_net::IngressResolver,
        routes: odflow_net::RouteTable,
        state: &PipelineState,
        counters: Arc<TenantCounters>,
    ) -> Result<TenantPipeline, ServeError> {
        let engine = ShardedIngest::new(config.pipeline, topology, ingress, routes)?;
        let num_bins = engine.num_bins();
        let mut shard = engine.make_shard(0..num_bins)?;
        shard.restore_state(&state.shard)?;
        let mut quality = DataQuality::clean(num_bins);
        quality.quarantine = state.quarantine;
        quality.exporters = ExporterSeqStats::from_state(&state.exporters);
        let detector = match &state.detector {
            Some(ds) => Some(
                OnlineDetector::from_state(ds.clone())
                    .map_err(|e| ServeError::Config(format!("detector snapshot: {e}")))?,
            ),
            None => None,
        };
        let next_close = usize::try_from(state.next_close)
            .map_err(|_| ServeError::Config("next_close overflows usize".to_owned()))?;
        if next_close > num_bins {
            return Err(ServeError::Config(format!(
                "snapshot closed {next_close} bins but the window has {num_bins}"
            )));
        }
        Ok(TenantPipeline {
            config,
            engine,
            shard,
            quality,
            detector,
            next_close,
            watermark_secs: state.watermark_secs,
            live_verdicts: state.live_verdicts.clone(),
            counters,
            frames_ingested: state.frames_ingested,
            ckpt_seq: state.seq + 1,
            store: None,
        })
    }

    /// Enables checkpointing: every bin close now snapshots the full
    /// pipeline state into `store`.
    pub fn set_checkpoint_store(&mut self, store: CheckpointStore) {
        self.store = Some(store);
    }

    /// Replaces the shared counter block — the supervisor threading one
    /// block through a tenant's successive worker incarnations.
    pub(crate) fn set_counters(&mut self, counters: Arc<TenantCounters>) {
        self.counters = counters;
    }

    /// Frames consumed so far (the checkpoint replay cursor).
    #[must_use]
    pub fn frames_ingested(&self) -> u64 {
        self.frames_ingested
    }

    /// Snapshots the complete pipeline state at the current consistent
    /// cut — everything [`Self::restore`] needs to resume bit-identically.
    #[must_use]
    pub fn export_state(&self) -> PipelineState {
        PipelineState {
            seq: self.ckpt_seq,
            frames_ingested: self.frames_ingested,
            next_close: self.next_close as u64,
            watermark_secs: self.watermark_secs,
            shard: self.shard.export_state(),
            quarantine: self.quality.quarantine,
            exporters: self.quality.exporters.export_state(),
            detector: self.detector.as_ref().map(OnlineDetector::export_state),
            live_verdicts: self.live_verdicts.clone(),
        }
    }

    /// The shared counter block; the daemon registers this with its
    /// metrics so admission and rendering observe the same atomics.
    #[must_use]
    pub fn counters(&self) -> Arc<TenantCounters> {
        Arc::clone(&self.counters)
    }

    /// The tenant's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Offers one NetFlow v5 frame exactly as it came off a socket.
    ///
    /// Never fails and never panics: malformed frames are quarantined,
    /// duplicate exporter sequences deduplicated, unplaceable records
    /// counted — all into the shared counters and the flush-time quality
    /// report.
    pub fn ingest_frame(&mut self, frame: &[u8]) {
        // Counted before any early return, so the cursor in a checkpoint
        // always covers the frame whose bin close produced it.
        self.frames_ingested += 1;
        let t0 = monotonic_now();
        let Some((hdr, records)) = decode_datagram_lossy(frame, &mut self.quality.quarantine)
        else {
            TenantCounters::add(&self.counters.frames_quarantined, 1);
            TenantCounters::add(&self.counters.decode_nanos, elapsed_nanos(t0));
            return;
        };
        let fresh = self.quality.exporters.observe(
            hdr.engine_id,
            hdr.flow_sequence,
            hdr.count,
            hdr.sampling_interval,
        );
        TenantCounters::add(&self.counters.decode_nanos, elapsed_nanos(t0));
        if !fresh {
            return;
        }

        let t1 = monotonic_now();
        TenantCounters::add(&self.counters.records_decoded, records.len() as u64);
        for record in records {
            // A full-window shard counts out-of-window records quietly;
            // any other error (misroute, bad OD index) is impossible by
            // construction but still must not panic or abort the frame.
            if self.shard.push_sampled_record(record).is_err() {
                TenantCounters::add(&self.counters.ingest_errors, 1);
            }
        }
        TenantCounters::add(&self.counters.ingest_nanos, elapsed_nanos(t1));

        let closed_before = self.next_close;
        self.advance_watermark(u64::from(hdr.unix_secs));
        if self.next_close > closed_before {
            self.write_checkpoint();
        }
    }

    /// Fires the chaos schedule at a pipeline boundary, if one is armed.
    fn maybe_crash(&self, point: CrashPoint) {
        if let Some(kind) = self.config.crash.as_ref().and_then(|c| c.fire(point)) {
            checkpoint::trigger_crash(point, kind);
        }
    }

    /// Persists one checkpoint generation covering everything up to and
    /// including the frame that just closed ≥1 bin. Write failures are
    /// counted, never fatal — the previous generation stays intact and
    /// the pipeline keeps serving.
    fn write_checkpoint(&mut self) {
        if self.store.is_none() && self.config.crash.is_none() {
            return;
        }
        let bin = self.next_close.saturating_sub(1);
        self.maybe_crash(CrashPoint::BeforeCheckpoint(bin));
        if self.store.is_some() {
            // A torn-write injection surfaces a truncated committed slot
            // and then dies — the shape recovery must reject by checksum.
            let torn =
                self.config.crash.as_ref().and_then(|c| c.fire(CrashPoint::TornCheckpoint(bin)));
            if let Some(kind) = torn {
                let state = self.export_state();
                let _ = self.store.as_ref().map(|s| s.write_torn(&state));
                checkpoint::trigger_crash(CrashPoint::TornCheckpoint(bin), kind);
            }
            let state = self.export_state();
            match self.store.as_ref().map(|s| s.write(&state)) {
                Some(Ok(())) => {
                    self.ckpt_seq += 1;
                    TenantCounters::add(&self.counters.checkpoints, 1);
                }
                Some(Err(_)) => TenantCounters::add(&self.counters.ingest_errors, 1),
                None => {}
            }
        }
        self.maybe_crash(CrashPoint::AfterCheckpoint(bin));
    }

    /// Raises the watermark and closes every bin whose end it has passed.
    fn advance_watermark(&mut self, export_secs: u64) {
        if export_secs > self.watermark_secs {
            self.watermark_secs = export_secs;
        }
        let (start_secs, bin_secs) =
            (self.config.pipeline.start_secs, self.config.pipeline.bin_secs);
        if self.watermark_secs >= start_secs {
            let wm_bin = (self.watermark_secs - start_secs) / bin_secs;
            TenantCounters::raise(&self.counters.watermark_bin, wm_bin);
        }
        while self.next_close < self.engine.num_bins()
            && self.watermark_secs >= start_secs + (self.next_close as u64 + 1) * bin_secs
        {
            self.close_bin();
        }
    }

    /// Closes bin `self.next_close`: snapshots its bytes row, fits or
    /// feeds the online detector, and advances.
    fn close_bin(&mut self) {
        let t0 = monotonic_now();
        let bin = self.next_close;
        self.maybe_crash(CrashPoint::BeforeBinClose(bin));
        self.next_close += 1;
        let row: Vec<f64> = self.shard.bin_row(bin, TrafficType::Bytes).unwrap_or(&[]).to_vec();
        let status = match self.shard.bin_record_count(bin) {
            Some(n) if n > 0 => BinStatus::Ok,
            _ => BinStatus::Masked,
        };

        if self.detector.is_none()
            && self.config.train_bins > 0
            && self.next_close == self.config.train_bins
        {
            self.fit_detector();
        } else if let Some(detector) = self.detector.as_mut() {
            match detector.push_with_status(&row, status) {
                Ok(verdict) => {
                    for d in &verdict.detections {
                        let c = match d.kind {
                            StatisticKind::Spe => &self.counters.alarms_spe,
                            StatisticKind::T2 => &self.counters.alarms_t2,
                        };
                        TenantCounters::add(c, 1);
                    }
                    if verdict.degraded.is_some() {
                        TenantCounters::add(&self.counters.verdicts_degraded, 1);
                    }
                    self.live_verdicts.push(verdict);
                }
                Err(_) => TenantCounters::add(&self.counters.ingest_errors, 1),
            }
        }
        TenantCounters::add(&self.counters.bins_closed, 1);
        TenantCounters::add(&self.counters.detect_nanos, elapsed_nanos(t0));
    }

    /// Fits the online detector on the accumulated training prefix. A
    /// degenerate prefix (e.g. all-zero rows after heavy shedding) leaves
    /// the detector off and counts an error — flush diagnosis still runs.
    fn fit_detector(&mut self) {
        let train = self.config.train_bins;
        let mut data = Vec::new();
        for b in 0..train {
            match self.shard.bin_row(b, TrafficType::Bytes) {
                Some(row) => data.extend_from_slice(row),
                None => {
                    TenantCounters::add(&self.counters.ingest_errors, 1);
                    return;
                }
            }
        }
        let cols = data.len() / train.max(1);
        let fitted = Matrix::from_vec(train, cols, data).ok().and_then(|m| {
            OnlineDetector::new(&m, self.config.subspace, self.config.refit_every).ok()
        });
        if fitted.is_none() {
            TenantCounters::add(&self.counters.ingest_errors, 1);
        }
        self.detector = fitted;
    }

    /// Drains the pipeline: closes every remaining bin, merges the shard,
    /// grafts the wire-path quality accounting, repairs outage bins, and
    /// runs the batch diagnosis — the same endgame as the batch wire path,
    /// so the flush is comparable to `run_scenario` output.
    ///
    /// # Errors
    ///
    /// [`ServeError::Flow`] when the window never accepted a record
    /// (`FlowError::NoData`) — there is nothing to report.
    pub fn flush(mut self) -> Result<TenantFlush, ServeError> {
        self.maybe_crash(CrashPoint::BeforeFlush);
        while self.next_close < self.engine.num_bins() {
            self.close_bin();
        }
        TenantCounters::set(
            &self.counters.exporter_lost_flows,
            self.quality.exporters.lost_flows_total(),
        );
        let mut outcome = self.engine.merge(vec![self.shard])?;
        outcome.quality.quarantine = self.quality.quarantine;
        outcome.quality.exporters = self.quality.exporters;
        outcome.repair(self.config.repair);
        let (diagnosis, diagnosis_error) = match diagnose(&outcome.matrices, self.config.subspace) {
            Ok(d) => (Some(d), None),
            Err(e) => (None, Some(e.to_string())),
        };
        Ok(TenantFlush {
            name: self.config.name,
            outcome,
            diagnosis,
            diagnosis_error,
            live_verdicts: self.live_verdicts,
        })
    }
}

/// Nanoseconds since `t0`, saturating into `u64`.
fn elapsed_nanos(t0: std::time::Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use odflow_gen::Scenario;
    use odflow_net::IngressResolver;

    const NUM_BINS: usize = 12;

    fn tenant_over(scenario: &Scenario, train_bins: usize) -> TenantPipeline {
        let routes = scenario.plan.build_route_table(1.0).unwrap();
        let ingress = IngressResolver::synthetic(&scenario.topology);
        let mut config = TenantConfig::abilene("t0", 0, NUM_BINS);
        config.train_bins = train_bins;
        TenantPipeline::new(config, &scenario.topology, ingress, routes).unwrap()
    }

    fn scenario_frames(scenario: &Scenario) -> Vec<Vec<u8>> {
        let generator = scenario.generator();
        let mut seqs = vec![0u32; scenario.topology.num_pops()];
        (0..NUM_BINS).flat_map(|b| generator.frames_for_bin(b, &mut seqs)).collect()
    }

    #[test]
    fn streaming_flush_matches_batch_wire_ingest() {
        let scenario = Scenario::paper_window(7, NUM_BINS).unwrap();
        let frames = scenario_frames(&scenario);

        let mut tenant = tenant_over(&scenario, 0);
        for f in &frames {
            tenant.ingest_frame(f);
        }
        let counters = tenant.counters();
        let flush = tenant.flush().unwrap();

        let routes = scenario.plan.build_route_table(1.0).unwrap();
        let ingress = IngressResolver::synthetic(&scenario.topology);
        let engine = ShardedIngest::new(
            PipelineConfig::abilene(0, NUM_BINS),
            &scenario.topology,
            ingress,
            routes,
        )
        .unwrap();
        let batch = engine.ingest_datagrams(&frames).unwrap();

        assert_eq!(
            flush.outcome.matrices.bytes.data.as_slice(),
            batch.matrices.bytes.data.as_slice()
        );
        assert_eq!(
            flush.outcome.matrices.flows.data.as_slice(),
            batch.matrices.flows.data.as_slice()
        );
        assert_eq!(flush.outcome.quality.bin_records, batch.quality.bin_records);
        assert_eq!(flush.outcome.quality.quarantine, batch.quality.quarantine);
        assert!(flush.diagnosis.is_some());
        // Decoded records include the unresolvable/transit share the
        // binner excludes (the paper's ~7% resolution loss), so the
        // counter bounds the binned total from above.
        let decoded = TenantCounters::get(&counters.records_decoded);
        let binned = batch.quality.bin_records.iter().sum::<u64>();
        assert!(decoded >= binned && binned > 0, "decoded {decoded} >= binned {binned}");
        // All but the final bin close off the watermark; flush closes it.
        assert_eq!(TenantCounters::get(&counters.bins_closed), NUM_BINS as u64);
    }

    #[test]
    fn online_detector_fits_and_scores_the_tail() {
        let scenario = Scenario::paper_window(11, NUM_BINS).unwrap();
        let frames = scenario_frames(&scenario);
        let mut tenant = tenant_over(&scenario, 6);
        for f in &frames {
            tenant.ingest_frame(f);
        }
        let flush = tenant.flush().unwrap();
        // Bins 6..12 are scored (training prefix is 0..6).
        assert_eq!(flush.live_verdicts.len(), NUM_BINS - 6);
        assert_eq!(flush.live_verdicts[0].bin, 0);
        assert!(flush.live_verdicts.iter().all(|v| v.spe.is_finite() && v.t2.is_finite()));
    }

    #[test]
    fn hostile_frames_are_quarantined_not_fatal() {
        let scenario = Scenario::paper_window(13, NUM_BINS).unwrap();
        let mut frames = scenario_frames(&scenario);
        // Garble the exporter's *second* frame: the first frame set its
        // sequence baseline, so the quarantined frame shows up as a
        // sequence gap at the exporter's next accepted frame.
        frames[1][1] = 9; // wrong version
        frames.insert(2, vec![0u8; 3]); // truncated header
        let mut tenant = tenant_over(&scenario, 0);
        for f in &frames {
            tenant.ingest_frame(f);
        }
        let counters = tenant.counters();
        assert_eq!(TenantCounters::get(&counters.frames_quarantined), 2);
        let flush = tenant.flush().unwrap();
        assert_eq!(flush.outcome.quality.quarantine.wrong_version, 1);
        assert_eq!(flush.outcome.quality.quarantine.truncated_header, 1);
        assert!(flush.outcome.quality.quarantine.is_conserved());
        // The garbled exporter's lost records show up as a sequence gap.
        assert!(flush.outcome.quality.exporters.lost_flows_total() > 0);
    }

    #[test]
    fn empty_window_flush_is_a_clean_error() {
        let scenario = Scenario::paper_window(17, NUM_BINS).unwrap();
        let tenant = tenant_over(&scenario, 0);
        assert!(matches!(tenant.flush(), Err(ServeError::Flow(_))));
    }

    #[test]
    fn checkpoint_resume_replays_to_a_bit_identical_flush() {
        let scenario = Scenario::paper_window(19, NUM_BINS).unwrap();
        let frames = scenario_frames(&scenario);
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp/tenant_ckpt_resume");
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir, "t0");

        // Uninterrupted baseline, online detector active over the tail.
        let mut baseline = tenant_over(&scenario, 6);
        for f in &frames {
            baseline.ingest_frame(f);
        }
        let base_flush = baseline.flush().unwrap();

        // Checkpointed run, stopped dead after ~3/4 of the stream.
        let stop_at = frames.len() * 3 / 4;
        let mut victim = tenant_over(&scenario, 6);
        victim.set_checkpoint_store(store.clone());
        for f in &frames[..stop_at] {
            victim.ingest_frame(f);
        }
        drop(victim); // the "crash": no flush, no further checkpoints

        // Recover from the newest generation; replay the uncovered
        // suffix (the cursor can trail stop_at — frames consumed since
        // the last bin close are redelivered, and the exporter-sequence
        // dedup plus distinct-set semantics make that replay harmless
        // only when the cursor is exact, so resume precisely there).
        let state = store.load_newest().state.expect("a checkpoint was written");
        let cursor = usize::try_from(state.frames_ingested).unwrap();
        assert!(cursor <= stop_at && cursor > 0);
        let routes = scenario.plan.build_route_table(1.0).unwrap();
        let ingress = IngressResolver::synthetic(&scenario.topology);
        let mut config = TenantConfig::abilene("t0", 0, NUM_BINS);
        config.train_bins = 6;
        let mut resumed = TenantPipeline::restore(
            config,
            &scenario.topology,
            ingress,
            routes,
            &state,
            Arc::new(TenantCounters::default()),
        )
        .unwrap();
        for f in &frames[cursor..] {
            resumed.ingest_frame(f);
        }
        let resumed_flush = resumed.flush().unwrap();

        // Byte-identical endgame: matrices, quality, verdict float bits.
        assert_eq!(
            resumed_flush.outcome.matrices.bytes.data.as_slice(),
            base_flush.outcome.matrices.bytes.data.as_slice()
        );
        assert_eq!(
            resumed_flush.outcome.matrices.flows.data.as_slice(),
            base_flush.outcome.matrices.flows.data.as_slice()
        );
        assert_eq!(resumed_flush.outcome.quality.quarantine, base_flush.outcome.quality.quarantine);
        assert_eq!(resumed_flush.live_verdicts.len(), base_flush.live_verdicts.len());
        for (r, b) in resumed_flush.live_verdicts.iter().zip(&base_flush.live_verdicts) {
            assert_eq!(r.bin, b.bin);
            assert_eq!(r.spe.to_bits(), b.spe.to_bits());
            assert_eq!(r.t2.to_bits(), b.t2.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
