//! One tenant's streaming pipeline: frames in, bins closed, verdicts out.
//!
//! A tenant is one monitored mesh — its own topology, routing state, and
//! detection configuration. The daemon runs each tenant's pipeline on a
//! dedicated worker thread; everything here is therefore plain `&mut
//! self` single-threaded code, which is what makes the end state
//! deterministic: frames decode **serially, in arrival order** (the
//! quarantine and exporter-sequence accounting are order-sensitive) and
//! records fill a **single full-window shard**, the degenerate grain the
//! workspace's equivalence tests pin to the batch path.
//!
//! Bins close as the export-timestamp watermark passes their end; each
//! closed bin's bytes row feeds the [`OnlineDetector`] (once a training
//! prefix has accumulated). At drain, [`TenantPipeline::flush`] merges
//! the shard into the same [`IngestOutcome`] → repair → `diagnose`
//! endgame as batch `run_scenario`, so daemon and batch verdicts are
//! directly comparable.

use crate::metrics::{monotonic_now, TenantCounters};
use crate::ServeError;
use odflow_flow::netflow::decode_datagram_lossy;
use odflow_flow::{
    BinShard, BinStatus, DataQuality, IngestOutcome, PipelineConfig, RepairPolicy, ShardedIngest,
    TrafficType,
};
use odflow_linalg::Matrix;
use odflow_subspace::{
    diagnose, Diagnosis, OnlineDetector, StatisticKind, StreamVerdict, SubspaceConfig,
};
use std::sync::Arc;

/// Static configuration of one tenant's pipeline.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Tenant name, used as the metrics label.
    pub name: String,
    /// Ingest window/binning configuration (sampler fields unused — the
    /// daemon consumes pre-sampled export records).
    pub pipeline: PipelineConfig,
    /// Subspace detection configuration, for both the online detector and
    /// the flush-time batch diagnosis.
    pub subspace: SubspaceConfig,
    /// Bins of training prefix before the online detector fits; `0`
    /// disables online detection (flush-time diagnosis still runs).
    pub train_bins: usize,
    /// Online detector refit cadence (observations; `0` = never refit).
    pub refit_every: usize,
    /// Capacity of the tenant's frame queue, in frames.
    pub queue_frames: usize,
    /// Outage-repair policy applied at flush.
    pub repair: RepairPolicy,
}

impl TenantConfig {
    /// The paper's Abilene configuration: 5-minute bins from `start_secs`,
    /// online detection after a `num_bins / 2` training prefix.
    #[must_use]
    pub fn abilene(name: &str, start_secs: u64, num_bins: usize) -> TenantConfig {
        TenantConfig {
            name: name.to_owned(),
            pipeline: PipelineConfig::abilene(start_secs, num_bins),
            subspace: SubspaceConfig::default(),
            train_bins: num_bins / 2,
            refit_every: 0,
            queue_frames: 1024,
            repair: RepairPolicy::default(),
        }
    }
}

/// Everything a drained tenant hands back.
#[derive(Debug)]
pub struct TenantFlush {
    /// The tenant's name.
    pub name: String,
    /// The merged, repaired ingest outcome — matrices plus quality
    /// accounting, exactly as the batch wire path produces.
    pub outcome: IngestOutcome,
    /// Flush-time batch diagnosis over the full window, when it succeeded.
    pub diagnosis: Option<Diagnosis>,
    /// Why the diagnosis failed, when it did (e.g. backpressure shed so
    /// many frames the matrices degenerated). The daemon still returns the
    /// matrices and counters — a partial flush beats a lost one.
    pub diagnosis_error: Option<String>,
    /// Verdicts the online detector issued while the daemon ran, in bin
    /// order.
    pub live_verdicts: Vec<StreamVerdict>,
}

/// The per-tenant streaming state machine. Owned by exactly one worker
/// thread; all cross-thread observation goes through the shared
/// [`TenantCounters`].
#[derive(Debug)]
pub struct TenantPipeline {
    config: TenantConfig,
    engine: ShardedIngest,
    shard: BinShard,
    /// Wire-path accounting (quarantine + exporter sequences); grafted
    /// onto the merged outcome at flush, mirroring `ingest_datagrams`.
    quality: DataQuality,
    detector: Option<OnlineDetector>,
    /// Next bin index awaiting closure.
    next_close: usize,
    /// Highest export timestamp seen (trace-epoch seconds).
    watermark_secs: u64,
    live_verdicts: Vec<StreamVerdict>,
    counters: Arc<TenantCounters>,
}

impl TenantPipeline {
    /// Builds the pipeline over its routing state.
    ///
    /// # Errors
    ///
    /// [`ServeError::Flow`] on invalid window/OD-space configuration.
    pub fn new(
        config: TenantConfig,
        topology: &odflow_net::Topology,
        ingress: odflow_net::IngressResolver,
        routes: odflow_net::RouteTable,
    ) -> Result<TenantPipeline, ServeError> {
        let engine = ShardedIngest::new(config.pipeline, topology, ingress, routes)?;
        let num_bins = engine.num_bins();
        let shard = engine.make_shard(0..num_bins)?;
        Ok(TenantPipeline {
            config,
            engine,
            shard,
            quality: DataQuality::clean(num_bins),
            detector: None,
            next_close: 0,
            watermark_secs: 0,
            live_verdicts: Vec::new(),
            counters: Arc::new(TenantCounters::default()),
        })
    }

    /// The shared counter block; the daemon registers this with its
    /// metrics so admission and rendering observe the same atomics.
    #[must_use]
    pub fn counters(&self) -> Arc<TenantCounters> {
        Arc::clone(&self.counters)
    }

    /// The tenant's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Offers one NetFlow v5 frame exactly as it came off a socket.
    ///
    /// Never fails and never panics: malformed frames are quarantined,
    /// duplicate exporter sequences deduplicated, unplaceable records
    /// counted — all into the shared counters and the flush-time quality
    /// report.
    pub fn ingest_frame(&mut self, frame: &[u8]) {
        let t0 = monotonic_now();
        let Some((hdr, records)) = decode_datagram_lossy(frame, &mut self.quality.quarantine)
        else {
            TenantCounters::add(&self.counters.frames_quarantined, 1);
            TenantCounters::add(&self.counters.decode_nanos, elapsed_nanos(t0));
            return;
        };
        let fresh = self.quality.exporters.observe(
            hdr.engine_id,
            hdr.flow_sequence,
            hdr.count,
            hdr.sampling_interval,
        );
        TenantCounters::add(&self.counters.decode_nanos, elapsed_nanos(t0));
        if !fresh {
            return;
        }

        let t1 = monotonic_now();
        TenantCounters::add(&self.counters.records_decoded, records.len() as u64);
        for record in records {
            // A full-window shard counts out-of-window records quietly;
            // any other error (misroute, bad OD index) is impossible by
            // construction but still must not panic or abort the frame.
            if self.shard.push_sampled_record(record).is_err() {
                TenantCounters::add(&self.counters.ingest_errors, 1);
            }
        }
        TenantCounters::add(&self.counters.ingest_nanos, elapsed_nanos(t1));

        self.advance_watermark(u64::from(hdr.unix_secs));
    }

    /// Raises the watermark and closes every bin whose end it has passed.
    fn advance_watermark(&mut self, export_secs: u64) {
        if export_secs > self.watermark_secs {
            self.watermark_secs = export_secs;
        }
        let (start_secs, bin_secs) =
            (self.config.pipeline.start_secs, self.config.pipeline.bin_secs);
        if self.watermark_secs >= start_secs {
            let wm_bin = (self.watermark_secs - start_secs) / bin_secs;
            TenantCounters::raise(&self.counters.watermark_bin, wm_bin);
        }
        while self.next_close < self.engine.num_bins()
            && self.watermark_secs >= start_secs + (self.next_close as u64 + 1) * bin_secs
        {
            self.close_bin();
        }
    }

    /// Closes bin `self.next_close`: snapshots its bytes row, fits or
    /// feeds the online detector, and advances.
    fn close_bin(&mut self) {
        let t0 = monotonic_now();
        let bin = self.next_close;
        self.next_close += 1;
        let row: Vec<f64> = self.shard.bin_row(bin, TrafficType::Bytes).unwrap_or(&[]).to_vec();
        let status = match self.shard.bin_record_count(bin) {
            Some(n) if n > 0 => BinStatus::Ok,
            _ => BinStatus::Masked,
        };

        if self.detector.is_none()
            && self.config.train_bins > 0
            && self.next_close == self.config.train_bins
        {
            self.fit_detector();
        } else if let Some(detector) = self.detector.as_mut() {
            match detector.push_with_status(&row, status) {
                Ok(verdict) => {
                    for d in &verdict.detections {
                        let c = match d.kind {
                            StatisticKind::Spe => &self.counters.alarms_spe,
                            StatisticKind::T2 => &self.counters.alarms_t2,
                        };
                        TenantCounters::add(c, 1);
                    }
                    if verdict.degraded.is_some() {
                        TenantCounters::add(&self.counters.verdicts_degraded, 1);
                    }
                    self.live_verdicts.push(verdict);
                }
                Err(_) => TenantCounters::add(&self.counters.ingest_errors, 1),
            }
        }
        TenantCounters::add(&self.counters.bins_closed, 1);
        TenantCounters::add(&self.counters.detect_nanos, elapsed_nanos(t0));
    }

    /// Fits the online detector on the accumulated training prefix. A
    /// degenerate prefix (e.g. all-zero rows after heavy shedding) leaves
    /// the detector off and counts an error — flush diagnosis still runs.
    fn fit_detector(&mut self) {
        let train = self.config.train_bins;
        let mut data = Vec::new();
        for b in 0..train {
            match self.shard.bin_row(b, TrafficType::Bytes) {
                Some(row) => data.extend_from_slice(row),
                None => {
                    TenantCounters::add(&self.counters.ingest_errors, 1);
                    return;
                }
            }
        }
        let cols = data.len() / train.max(1);
        let fitted = Matrix::from_vec(train, cols, data).ok().and_then(|m| {
            OnlineDetector::new(&m, self.config.subspace, self.config.refit_every).ok()
        });
        if fitted.is_none() {
            TenantCounters::add(&self.counters.ingest_errors, 1);
        }
        self.detector = fitted;
    }

    /// Drains the pipeline: closes every remaining bin, merges the shard,
    /// grafts the wire-path quality accounting, repairs outage bins, and
    /// runs the batch diagnosis — the same endgame as the batch wire path,
    /// so the flush is comparable to `run_scenario` output.
    ///
    /// # Errors
    ///
    /// [`ServeError::Flow`] when the window never accepted a record
    /// (`FlowError::NoData`) — there is nothing to report.
    pub fn flush(mut self) -> Result<TenantFlush, ServeError> {
        while self.next_close < self.engine.num_bins() {
            self.close_bin();
        }
        TenantCounters::set(
            &self.counters.exporter_lost_flows,
            self.quality.exporters.lost_flows_total(),
        );
        let mut outcome = self.engine.merge(vec![self.shard])?;
        outcome.quality.quarantine = self.quality.quarantine;
        outcome.quality.exporters = self.quality.exporters;
        outcome.repair(self.config.repair);
        let (diagnosis, diagnosis_error) = match diagnose(&outcome.matrices, self.config.subspace) {
            Ok(d) => (Some(d), None),
            Err(e) => (None, Some(e.to_string())),
        };
        Ok(TenantFlush {
            name: self.config.name,
            outcome,
            diagnosis,
            diagnosis_error,
            live_verdicts: self.live_verdicts,
        })
    }
}

/// Nanoseconds since `t0`, saturating into `u64`.
fn elapsed_nanos(t0: std::time::Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use odflow_gen::Scenario;
    use odflow_net::IngressResolver;

    const NUM_BINS: usize = 12;

    fn tenant_over(scenario: &Scenario, train_bins: usize) -> TenantPipeline {
        let routes = scenario.plan.build_route_table(1.0).unwrap();
        let ingress = IngressResolver::synthetic(&scenario.topology);
        let mut config = TenantConfig::abilene("t0", 0, NUM_BINS);
        config.train_bins = train_bins;
        TenantPipeline::new(config, &scenario.topology, ingress, routes).unwrap()
    }

    fn scenario_frames(scenario: &Scenario) -> Vec<Vec<u8>> {
        let generator = scenario.generator();
        let mut seqs = vec![0u32; scenario.topology.num_pops()];
        (0..NUM_BINS).flat_map(|b| generator.frames_for_bin(b, &mut seqs)).collect()
    }

    #[test]
    fn streaming_flush_matches_batch_wire_ingest() {
        let scenario = Scenario::paper_window(7, NUM_BINS).unwrap();
        let frames = scenario_frames(&scenario);

        let mut tenant = tenant_over(&scenario, 0);
        for f in &frames {
            tenant.ingest_frame(f);
        }
        let counters = tenant.counters();
        let flush = tenant.flush().unwrap();

        let routes = scenario.plan.build_route_table(1.0).unwrap();
        let ingress = IngressResolver::synthetic(&scenario.topology);
        let engine = ShardedIngest::new(
            PipelineConfig::abilene(0, NUM_BINS),
            &scenario.topology,
            ingress,
            routes,
        )
        .unwrap();
        let batch = engine.ingest_datagrams(&frames).unwrap();

        assert_eq!(
            flush.outcome.matrices.bytes.data.as_slice(),
            batch.matrices.bytes.data.as_slice()
        );
        assert_eq!(
            flush.outcome.matrices.flows.data.as_slice(),
            batch.matrices.flows.data.as_slice()
        );
        assert_eq!(flush.outcome.quality.bin_records, batch.quality.bin_records);
        assert_eq!(flush.outcome.quality.quarantine, batch.quality.quarantine);
        assert!(flush.diagnosis.is_some());
        // Decoded records include the unresolvable/transit share the
        // binner excludes (the paper's ~7% resolution loss), so the
        // counter bounds the binned total from above.
        let decoded = TenantCounters::get(&counters.records_decoded);
        let binned = batch.quality.bin_records.iter().sum::<u64>();
        assert!(decoded >= binned && binned > 0, "decoded {decoded} >= binned {binned}");
        // All but the final bin close off the watermark; flush closes it.
        assert_eq!(TenantCounters::get(&counters.bins_closed), NUM_BINS as u64);
    }

    #[test]
    fn online_detector_fits_and_scores_the_tail() {
        let scenario = Scenario::paper_window(11, NUM_BINS).unwrap();
        let frames = scenario_frames(&scenario);
        let mut tenant = tenant_over(&scenario, 6);
        for f in &frames {
            tenant.ingest_frame(f);
        }
        let flush = tenant.flush().unwrap();
        // Bins 6..12 are scored (training prefix is 0..6).
        assert_eq!(flush.live_verdicts.len(), NUM_BINS - 6);
        assert_eq!(flush.live_verdicts[0].bin, 0);
        assert!(flush.live_verdicts.iter().all(|v| v.spe.is_finite() && v.t2.is_finite()));
    }

    #[test]
    fn hostile_frames_are_quarantined_not_fatal() {
        let scenario = Scenario::paper_window(13, NUM_BINS).unwrap();
        let mut frames = scenario_frames(&scenario);
        // Garble the exporter's *second* frame: the first frame set its
        // sequence baseline, so the quarantined frame shows up as a
        // sequence gap at the exporter's next accepted frame.
        frames[1][1] = 9; // wrong version
        frames.insert(2, vec![0u8; 3]); // truncated header
        let mut tenant = tenant_over(&scenario, 0);
        for f in &frames {
            tenant.ingest_frame(f);
        }
        let counters = tenant.counters();
        assert_eq!(TenantCounters::get(&counters.frames_quarantined), 2);
        let flush = tenant.flush().unwrap();
        assert_eq!(flush.outcome.quality.quarantine.wrong_version, 1);
        assert_eq!(flush.outcome.quality.quarantine.truncated_header, 1);
        assert!(flush.outcome.quality.quarantine.is_conserved());
        // The garbled exporter's lost records show up as a sequence gap.
        assert!(flush.outcome.quality.exporters.lost_flows_total() > 0);
    }

    #[test]
    fn empty_window_flush_is_a_clean_error() {
        let scenario = Scenario::paper_window(17, NUM_BINS).unwrap();
        let tenant = tenant_over(&scenario, 0);
        assert!(matches!(tenant.flush(), Err(ServeError::Flow(_))));
    }
}
