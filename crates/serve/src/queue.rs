//! Bounded MPSC queues with drop-and-account backpressure.
//!
//! Every inter-stage hand-off in the daemon goes through a
//! [`BoundedQueue`]: admission (`try_push`) **never blocks and never
//! grows the queue past its capacity** — an overloaded tenant sheds the
//! newest frames and the caller counts the drop. Consumption
//! (`pop_timeout`) blocks with a timeout so workers stay responsive to
//! drain/pause control without spinning.
//!
//! Built on `std::sync` (`Mutex` + `Condvar`); lock poisoning is
//! recovered via `PoisonError::into_inner`, so no code path here can
//! panic — the queue sits on the daemon's no-panic hot path.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Result of a [`BoundedQueue::pop_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue still empty (and open).
    Empty,
    /// The queue is closed and fully drained; no item will ever arrive.
    Closed,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity FIFO shared between socket admission and one tenant
/// worker.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            state: Mutex::new(State { items: VecDeque::with_capacity(capacity), closed: false }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Non-blocking enqueue. Returns the item back when the queue is
    /// full or closed — the caller drops it and increments its
    /// backpressure counter; nothing in this path waits or allocates
    /// beyond the ring.
    ///
    /// # Errors
    ///
    /// `Err(item)` when the queue is at capacity or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut s = self.lock();
        if s.closed || s.items.len() >= self.capacity {
            return Err(item);
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking dequeue with a timeout. Returns [`Pop::Closed`] only
    /// once the queue is both closed and empty, so a drain never loses
    /// accepted items.
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let mut s = self.lock();
        if let Some(item) = s.items.pop_front() {
            return Pop::Item(item);
        }
        if s.closed {
            return Pop::Closed;
        }
        let (mut s, _) =
            self.not_empty.wait_timeout(s, timeout).unwrap_or_else(PoisonError::into_inner);
        if let Some(item) = s.items.pop_front() {
            return Pop::Item(item);
        }
        if s.closed {
            return Pop::Closed;
        }
        Pop::Empty
    }

    /// Current queue depth.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// `true` when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: further pushes fail, and consumers see
    /// [`Pop::Closed`] once the backlog drains. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity_bound() {
        let q = BoundedQueue::new(3);
        assert_eq!(q.capacity(), 3);
        for i in 0..3 {
            assert!(q.try_push(i).is_ok());
        }
        // The fourth push is shed, not buffered and not blocking.
        assert_eq!(q.try_push(99), Err(99));
        assert_eq!(q.len(), 3);
        for i in 0..3 {
            assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item(i));
        }
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Empty);
    }

    #[test]
    fn close_drains_backlog_before_reporting_closed() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(3), "closed queue rejects pushes");
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Closed);
        q.close(); // idempotent
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::<i32>::Closed);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(7).is_ok());
        assert_eq!(q.try_push(8), Err(8));
    }

    #[test]
    fn cross_thread_handoff() {
        use std::sync::Arc;
        let q = Arc::new(BoundedQueue::new(64));
        let total = 500u64;
        let pool = scoped_pool::Pool::new(1);
        let mut got = 0u64;
        pool.scoped(|scope| {
            let q2 = Arc::clone(&q);
            scope.execute(move || {
                for i in 0..total {
                    // Spin until accepted: the test producer must not
                    // lose items, unlike daemon admission.
                    let mut item = i;
                    while let Err(back) = q2.try_push(item) {
                        item = back;
                        std::thread::yield_now();
                    }
                }
                q2.close();
            });
            loop {
                match q.pop_timeout(Duration::from_millis(5)) {
                    Pop::Item(_) => got += 1,
                    Pop::Empty => {}
                    Pop::Closed => break,
                }
            }
        });
        pool.shutdown();
        assert_eq!(got, total);
    }
}
