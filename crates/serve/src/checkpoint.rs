//! Crash-safe tenant checkpointing and the deterministic kill-point
//! chaos harness.
//!
//! A long-running collector must survive a process crash without
//! discarding the window it has accumulated. This module persists the
//! *entire* per-tenant pipeline state — closed-bin matrix rows, distinct
//! 5-tuple sets, bin watermark, exporter sequence tracking, quarantine
//! counters, the fitted [`OnlineDetector`](odflow_subspace::OnlineDetector)
//! model at its exact floats, and the ingest cursor — as a versioned,
//! checksummed, hand-rolled binary snapshot (the workspace is offline:
//! no serde).
//!
//! ## Format
//!
//! ```text
//! [magic 8B][version u32][payload_len u64][fnv1a64(payload) u64][payload]
//! ```
//!
//! All integers little-endian fixed-width; every `f64` is its exact
//! [`f64::to_bits`] image, so a restored pipeline resumes *bit-identical*
//! to the uninterrupted run. Decoding is total: arbitrary byte soup and
//! bit-flipped snapshots are rejected with a typed [`CheckpointError`],
//! never a panic, and never an unbounded allocation (every declared
//! length is validated against the bytes actually present).
//!
//! ## Generations
//!
//! [`CheckpointStore`] keeps **two alternating slot files** per tenant
//! (`<tenant>.a.ckpt` / `<tenant>.b.ckpt`), each written via temp file +
//! atomic rename and carrying a monotonic sequence number inside the
//! checksummed payload. Recovery reads both slots and resumes from the
//! *newest valid* one — a torn, truncated, or bit-flipped newest
//! generation falls back to the previous generation instead of failing.
//!
//! ## Chaos harness
//!
//! [`CrashSchedule`] injects deterministic failures at the pipeline's
//! crash-relevant boundaries ([`CrashPoint`]): simulated process kills
//! ([`CrashKind::Kill`], which the supervisor treats as death — no flush,
//! no restart) and worker panics ([`CrashKind::Panic`], which exercise
//! the restart/quarantine path). The e2e suite uses it to pin the
//! recovery theorem: killed at any crash point and recovered, the run
//! ends byte-identical to an uninterrupted one.

use odflow_flow::{
    ExporterSeqState, FlowKey, Protocol, QuarantineStats, ResolutionStats, ShardState,
};
use odflow_linalg::{Centering, EigenMethod, Matrix};
use odflow_net::IpAddr;
use odflow_subspace::{
    DegradedReason, Detection, DetectorState, EigenflowDecomposition, ModelState, StatisticKind,
    StreamVerdict, SubspaceConfig,
};
use std::fmt;
use std::panic::panic_any;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Leading bytes of every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"ODFCKPT\0";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Bytes of header before the payload: magic + version + length + checksum.
pub const CHECKPOINT_HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Why a checkpoint could not be decoded or persisted. Every corruption
/// mode maps to exactly one class; recovery treats all of them as "this
/// generation is unusable, try the other slot".
#[derive(Debug)]
pub enum CheckpointError {
    /// Fewer bytes than the structure declared — a torn or truncated file.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The file does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// A version this build does not speak.
    BadVersion(u32),
    /// The payload checksum does not match — bit rot or a torn write.
    BadChecksum {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually present.
        got: u64,
    },
    /// Structurally well-formed bytes with semantically invalid content
    /// (bad enum tag, inconsistent shape, trailing garbage).
    Corrupt(String),
    /// Filesystem-level failure while reading or writing.
    Io(std::io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated { needed, have } => {
                write!(f, "truncated checkpoint: needed {needed} more bytes, have {have}")
            }
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::BadChecksum { expected, got } => {
                write!(
                    f,
                    "checkpoint checksum mismatch: header {expected:#018x}, payload {got:#018x}"
                )
            }
            CheckpointError::Corrupt(reason) => write!(f, "corrupt checkpoint: {reason}"),
            CheckpointError::Io(e) => write!(f, "checkpoint io: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// FNV-1a 64-bit — the checkpoint payload checksum. Not cryptographic;
/// it detects torn writes and bit rot, which is the threat model here.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Complete snapshot of one tenant pipeline at a consistent cut (taken
/// immediately after a bin close, when the current frame is fully
/// ingested). `frames_ingested` is the recovery cursor: replaying the
/// original frame stream from that index onward reproduces the
/// uninterrupted run bit for bit.
#[derive(Debug, Clone)]
pub struct PipelineState {
    /// Monotonic checkpoint generation number (also selects the slot).
    pub seq: u64,
    /// Frames consumed from the queue when this snapshot was taken — the
    /// replay cursor for recovery.
    pub frames_ingested: u64,
    /// Next bin the pipeline will close.
    pub next_close: u64,
    /// The export-timestamp watermark (trace-epoch seconds).
    pub watermark_secs: u64,
    /// The full shard accumulation state.
    pub shard: ShardState,
    /// Wire-path quarantine counters.
    pub quarantine: QuarantineStats,
    /// Per-exporter sequence tracking, ascending exporter id.
    pub exporters: Vec<(u8, ExporterSeqState)>,
    /// The fitted streaming detector, `None` before training completes.
    pub detector: Option<DetectorState>,
    /// Live verdicts issued so far.
    pub live_verdicts: Vec<StreamVerdict>,
}

// ---------------------------------------------------------------------------
// Encoder / decoder primitives
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn f64s(&mut self, vs: &[f64]) {
        self.usize(vs.len());
        for &v in vs {
            self.f64(v);
        }
    }
    fn u64s(&mut self, vs: &[u64]) {
        self.usize(vs.len());
        for &v in vs {
            self.u64(v);
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

type DecResult<T> = Result<T, CheckpointError>;

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, at: 0 }
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }
    fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated { needed: n, have: self.remaining() });
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> DecResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> DecResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> DecResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> DecResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
    fn f64(&mut self) -> DecResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bool(&mut self) -> DecResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CheckpointError::Corrupt(format!("bool tag {t}"))),
        }
    }
    /// Reads a declared element count and validates that at least
    /// `count * min_elem_bytes` bytes are actually present — the
    /// allocation guard that keeps byte-soup decoding bounded.
    fn len(&mut self, min_elem_bytes: usize) -> DecResult<usize> {
        let n = self.u64()?;
        let n = usize::try_from(n)
            .map_err(|_| CheckpointError::Corrupt(format!("length {n} overflows usize")))?;
        let need = n
            .checked_mul(min_elem_bytes)
            .ok_or_else(|| CheckpointError::Corrupt(format!("length {n} overflows")))?;
        if self.remaining() < need {
            return Err(CheckpointError::Truncated { needed: need, have: self.remaining() });
        }
        Ok(n)
    }
    fn usize_val(&mut self) -> DecResult<usize> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| CheckpointError::Corrupt(format!("value {v} overflows usize")))
    }
    fn f64s(&mut self) -> DecResult<Vec<f64>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }
    fn u64s(&mut self) -> DecResult<Vec<u64>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.u64()).collect()
    }
}

// ---------------------------------------------------------------------------
// Component codecs
// ---------------------------------------------------------------------------

fn enc_flow_key(e: &mut Enc, k: &FlowKey) {
    e.u32(k.src_ip.0);
    e.u32(k.dst_ip.0);
    e.u16(k.src_port);
    e.u16(k.dst_port);
    e.u8(k.protocol.number());
}

fn dec_flow_key(d: &mut Dec<'_>) -> DecResult<FlowKey> {
    let src_ip = IpAddr(d.u32()?);
    let dst_ip = IpAddr(d.u32()?);
    let src_port = d.u16()?;
    let dst_port = d.u16()?;
    let protocol = Protocol::from_number(d.u8()?);
    Ok(FlowKey::new(src_ip, dst_ip, src_port, dst_port, protocol))
}

fn enc_shard(e: &mut Enc, s: &ShardState) {
    e.f64s(&s.bytes);
    e.f64s(&s.packets);
    e.f64s(&s.flows);
    e.usize(s.distinct.len());
    for keys in &s.distinct {
        e.usize(keys.len());
        for k in keys {
            enc_flow_key(e, k);
        }
    }
    e.u64s(&s.bin_records);
    e.u64(s.records_accepted);
    for v in [
        s.resolution.flows_total,
        s.resolution.flows_resolved,
        s.resolution.bytes_total,
        s.resolution.bytes_resolved,
        s.resolution.transit_skipped,
    ] {
        e.u64(v);
    }
    e.u64(s.dropped_out_of_window);
}

fn dec_shard(d: &mut Dec<'_>) -> DecResult<ShardState> {
    let bytes = d.f64s()?;
    let packets = d.f64s()?;
    let flows = d.f64s()?;
    let cells = d.len(8)?;
    let mut distinct = Vec::with_capacity(cells);
    for _ in 0..cells {
        let n = d.len(13)?; // 4 + 4 + 2 + 2 + 1 bytes per key
        let mut keys = Vec::with_capacity(n);
        for _ in 0..n {
            keys.push(dec_flow_key(d)?);
        }
        distinct.push(keys);
    }
    let bin_records = d.u64s()?;
    let records_accepted = d.u64()?;
    let resolution = ResolutionStats {
        flows_total: d.u64()?,
        flows_resolved: d.u64()?,
        bytes_total: d.u64()?,
        bytes_resolved: d.u64()?,
        transit_skipped: d.u64()?,
    };
    let dropped_out_of_window = d.u64()?;
    Ok(ShardState {
        bytes,
        packets,
        flows,
        distinct,
        bin_records,
        records_accepted,
        resolution,
        dropped_out_of_window,
    })
}

fn enc_quarantine(e: &mut Enc, q: &QuarantineStats) {
    for v in [
        q.frames_offered,
        q.frames_accepted,
        q.truncated_header,
        q.wrong_version,
        q.truncated_frame,
        q.oversized_frame,
        q.records_offered,
        q.records_accepted,
        q.implausible_records,
    ] {
        e.u64(v);
    }
}

fn dec_quarantine(d: &mut Dec<'_>) -> DecResult<QuarantineStats> {
    Ok(QuarantineStats {
        frames_offered: d.u64()?,
        frames_accepted: d.u64()?,
        truncated_header: d.u64()?,
        wrong_version: d.u64()?,
        truncated_frame: d.u64()?,
        oversized_frame: d.u64()?,
        records_offered: d.u64()?,
        records_accepted: d.u64()?,
        implausible_records: d.u64()?,
    })
}

fn enc_opt_u32(e: &mut Enc, v: Option<u32>) {
    match v {
        None => e.u8(0),
        Some(x) => {
            e.u8(1);
            e.u32(x);
        }
    }
}

fn dec_opt_u32(d: &mut Dec<'_>) -> DecResult<Option<u32>> {
    match d.u8()? {
        0 => Ok(None),
        1 => Ok(Some(d.u32()?)),
        t => Err(CheckpointError::Corrupt(format!("option tag {t}"))),
    }
}

fn enc_exporter(e: &mut Enc, s: &ExporterSeqState) {
    e.u64(s.frames);
    e.u64(s.records);
    e.u64(s.lost_flows);
    e.u64(s.out_of_order);
    e.u64(s.duplicate_frames);
    e.u16(s.sampling_lo);
    e.u16(s.sampling_hi);
    enc_opt_u32(e, s.next_seq);
    match s.last {
        None => e.u8(0),
        Some((seq, count)) => {
            e.u8(1);
            e.u32(seq);
            e.u16(count);
        }
    }
}

fn dec_exporter(d: &mut Dec<'_>) -> DecResult<ExporterSeqState> {
    let frames = d.u64()?;
    let records = d.u64()?;
    let lost_flows = d.u64()?;
    let out_of_order = d.u64()?;
    let duplicate_frames = d.u64()?;
    let sampling_lo = d.u16()?;
    let sampling_hi = d.u16()?;
    let next_seq = dec_opt_u32(d)?;
    let last = match d.u8()? {
        0 => None,
        1 => Some((d.u32()?, d.u16()?)),
        t => return Err(CheckpointError::Corrupt(format!("option tag {t}"))),
    };
    Ok(ExporterSeqState {
        frames,
        records,
        lost_flows,
        out_of_order,
        duplicate_frames,
        sampling_lo,
        sampling_hi,
        next_seq,
        last,
    })
}

fn enc_matrix(e: &mut Enc, m: &Matrix) {
    e.usize(m.nrows());
    e.usize(m.ncols());
    for &v in m.as_slice() {
        e.f64(v);
    }
}

fn dec_matrix(d: &mut Dec<'_>) -> DecResult<Matrix> {
    let rows = d.usize_val()?;
    let cols = d.usize_val()?;
    let cells = rows
        .checked_mul(cols)
        .ok_or_else(|| CheckpointError::Corrupt(format!("matrix {rows}x{cols} overflows")))?;
    let need = cells
        .checked_mul(8)
        .ok_or_else(|| CheckpointError::Corrupt(format!("matrix {rows}x{cols} overflows")))?;
    if d.remaining() < need {
        return Err(CheckpointError::Truncated { needed: need, have: d.remaining() });
    }
    let data: Vec<f64> = (0..cells).map(|_| d.f64()).collect::<DecResult<_>>()?;
    Matrix::from_vec(rows, cols, data)
        .map_err(|e| CheckpointError::Corrupt(format!("matrix shape: {e}")))
}

fn enc_method(e: &mut Enc, m: EigenMethod) {
    match m {
        EigenMethod::Auto => e.u8(0),
        EigenMethod::DenseJacobi => e.u8(1),
        EigenMethod::DenseTridiagonal => e.u8(2),
        EigenMethod::RandomizedTruncated { oversample, power_iters, seed } => {
            e.u8(3);
            e.usize(oversample);
            e.usize(power_iters);
            e.u64(seed);
        }
    }
}

fn dec_method(d: &mut Dec<'_>) -> DecResult<EigenMethod> {
    match d.u8()? {
        0 => Ok(EigenMethod::Auto),
        1 => Ok(EigenMethod::DenseJacobi),
        2 => Ok(EigenMethod::DenseTridiagonal),
        3 => Ok(EigenMethod::RandomizedTruncated {
            oversample: d.usize_val()?,
            power_iters: d.usize_val()?,
            seed: d.u64()?,
        }),
        t => Err(CheckpointError::Corrupt(format!("eigen method tag {t}"))),
    }
}

fn enc_subspace_config(e: &mut Enc, c: SubspaceConfig) {
    e.usize(c.k);
    e.f64(c.alpha);
    enc_method(e, c.method);
}

fn dec_subspace_config(d: &mut Dec<'_>) -> DecResult<SubspaceConfig> {
    Ok(SubspaceConfig { k: d.usize_val()?, alpha: d.f64()?, method: dec_method(d)? })
}

fn enc_model(e: &mut Enc, m: &ModelState) {
    enc_matrix(e, &m.decomp.eigenflows);
    enc_matrix(e, &m.decomp.loadings);
    e.f64s(&m.decomp.singular_values);
    e.f64s(&m.decomp.centering.means);
    e.f64s(&m.decomp.centering.scales);
    e.usize(m.decomp.n);
    e.f64(m.decomp.total_energy);
    e.bool(m.decomp.truncated);
    enc_subspace_config(e, m.config);
    e.usize(m.p);
    e.f64(m.spe_threshold);
    e.f64(m.t2_threshold);
    e.bool(m.degenerate_residual);
}

fn dec_model(d: &mut Dec<'_>) -> DecResult<ModelState> {
    let eigenflows = dec_matrix(d)?;
    let loadings = dec_matrix(d)?;
    let singular_values = d.f64s()?;
    let means = d.f64s()?;
    let scales = d.f64s()?;
    let n = d.usize_val()?;
    let total_energy = d.f64()?;
    let truncated = d.bool()?;
    let config = dec_subspace_config(d)?;
    let p = d.usize_val()?;
    let spe_threshold = d.f64()?;
    let t2_threshold = d.f64()?;
    let degenerate_residual = d.bool()?;
    Ok(ModelState {
        decomp: EigenflowDecomposition {
            eigenflows,
            loadings,
            singular_values,
            centering: Centering { means, scales },
            n,
            total_energy,
            truncated,
        },
        config,
        p,
        spe_threshold,
        t2_threshold,
        degenerate_residual,
    })
}

fn enc_detector(e: &mut Enc, s: &DetectorState) {
    enc_subspace_config(e, s.config);
    enc_model(e, &s.model);
    e.usize(s.window.len());
    for row in &s.window {
        e.f64s(row);
    }
    e.usize(s.window_len);
    e.usize(s.refit_every);
    e.usize(s.since_refit);
    e.usize(s.next_bin);
}

fn dec_detector(d: &mut Dec<'_>) -> DecResult<DetectorState> {
    let config = dec_subspace_config(d)?;
    let model = dec_model(d)?;
    let rows = d.len(8)?;
    let window: Vec<Vec<f64>> = (0..rows).map(|_| d.f64s()).collect::<DecResult<_>>()?;
    Ok(DetectorState {
        config,
        model,
        window,
        window_len: d.usize_val()?,
        refit_every: d.usize_val()?,
        since_refit: d.usize_val()?,
        next_bin: d.usize_val()?,
    })
}

fn enc_verdict(e: &mut Enc, v: &StreamVerdict) {
    e.usize(v.bin);
    e.f64(v.spe);
    e.f64(v.t2);
    e.usize(v.detections.len());
    for det in &v.detections {
        e.usize(det.bin);
        e.u8(match det.kind {
            StatisticKind::Spe => 0,
            StatisticKind::T2 => 1,
        });
        e.f64(det.value);
        e.f64(det.threshold);
    }
    match &v.degraded {
        None => e.u8(0),
        Some(DegradedReason::MaskedBin) => e.u8(1),
        Some(DegradedReason::ImputedBin) => e.u8(2),
        Some(DegradedReason::WidenedThreshold { imputed_fraction }) => {
            e.u8(3);
            e.f64(*imputed_fraction);
        }
    }
}

fn dec_verdict(d: &mut Dec<'_>) -> DecResult<StreamVerdict> {
    let bin = d.usize_val()?;
    let spe = d.f64()?;
    let t2 = d.f64()?;
    let n = d.len(25)?; // 8 + 1 + 8 + 8 bytes per detection
    let mut detections = Vec::with_capacity(n);
    for _ in 0..n {
        let dbin = d.usize_val()?;
        let kind = match d.u8()? {
            0 => StatisticKind::Spe,
            1 => StatisticKind::T2,
            t => return Err(CheckpointError::Corrupt(format!("statistic tag {t}"))),
        };
        detections.push(Detection { bin: dbin, kind, value: d.f64()?, threshold: d.f64()? });
    }
    let degraded = match d.u8()? {
        0 => None,
        1 => Some(DegradedReason::MaskedBin),
        2 => Some(DegradedReason::ImputedBin),
        3 => Some(DegradedReason::WidenedThreshold { imputed_fraction: d.f64()? }),
        t => return Err(CheckpointError::Corrupt(format!("degraded tag {t}"))),
    };
    Ok(StreamVerdict { bin, spe, t2, detections, degraded })
}

// ---------------------------------------------------------------------------
// Top-level codec
// ---------------------------------------------------------------------------

/// Serializes a pipeline snapshot into a self-verifying checkpoint file
/// image (header + checksummed payload).
#[must_use]
pub fn encode_state(state: &PipelineState) -> Vec<u8> {
    let mut p = Enc::new();
    p.u64(state.seq);
    p.u64(state.frames_ingested);
    p.u64(state.next_close);
    p.u64(state.watermark_secs);
    enc_shard(&mut p, &state.shard);
    enc_quarantine(&mut p, &state.quarantine);
    p.usize(state.exporters.len());
    for (id, s) in &state.exporters {
        p.u8(*id);
        enc_exporter(&mut p, s);
    }
    match &state.detector {
        None => p.u8(0),
        Some(det) => {
            p.u8(1);
            enc_detector(&mut p, det);
        }
    }
    p.usize(state.live_verdicts.len());
    for v in &state.live_verdicts {
        enc_verdict(&mut p, v);
    }

    let payload = p.buf;
    let mut out = Vec::with_capacity(CHECKPOINT_HEADER_LEN + payload.len());
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Deserializes a checkpoint file image. Total over arbitrary input:
/// rejects with a typed [`CheckpointError`], never panics, and never
/// allocates beyond what the bytes present can justify.
///
/// # Errors
///
/// Every [`CheckpointError`] class except `Io`.
pub fn decode_state(bytes: &[u8]) -> Result<PipelineState, CheckpointError> {
    let mut h = Dec::new(bytes);
    if h.take(8)? != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = h.u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let declared = h.u64()?;
    let expected_sum = h.u64()?;
    let declared = usize::try_from(declared)
        .map_err(|_| CheckpointError::Corrupt(format!("payload length {declared} overflows")))?;
    if h.remaining() < declared {
        return Err(CheckpointError::Truncated { needed: declared, have: h.remaining() });
    }
    if h.remaining() > declared {
        return Err(CheckpointError::Corrupt(format!(
            "{} trailing bytes beyond declared payload",
            h.remaining() - declared
        )));
    }
    let payload = h.take(declared)?;
    let got_sum = fnv1a64(payload);
    if got_sum != expected_sum {
        return Err(CheckpointError::BadChecksum { expected: expected_sum, got: got_sum });
    }

    let mut d = Dec::new(payload);
    let seq = d.u64()?;
    let frames_ingested = d.u64()?;
    let next_close = d.u64()?;
    let watermark_secs = d.u64()?;
    let shard = dec_shard(&mut d)?;
    let quarantine = dec_quarantine(&mut d)?;
    let n_exporters = d.len(37)?; // id + fixed exporter body lower bound
    let mut exporters = Vec::with_capacity(n_exporters);
    for _ in 0..n_exporters {
        let id = d.u8()?;
        exporters.push((id, dec_exporter(&mut d)?));
    }
    let detector = match d.u8()? {
        0 => None,
        1 => Some(dec_detector(&mut d)?),
        t => return Err(CheckpointError::Corrupt(format!("detector tag {t}"))),
    };
    let n_verdicts = d.len(8 + 8 + 8 + 8 + 1)?;
    let mut live_verdicts = Vec::with_capacity(n_verdicts);
    for _ in 0..n_verdicts {
        live_verdicts.push(dec_verdict(&mut d)?);
    }
    if d.remaining() != 0 {
        return Err(CheckpointError::Corrupt(format!(
            "{} unconsumed payload bytes",
            d.remaining()
        )));
    }
    Ok(PipelineState {
        seq,
        frames_ingested,
        next_close,
        watermark_secs,
        shard,
        quarantine,
        exporters,
        detector,
        live_verdicts,
    })
}

// ---------------------------------------------------------------------------
// Generation store
// ---------------------------------------------------------------------------

/// Two-slot alternating checkpoint store for one tenant.
///
/// Generation `seq` lands in slot `seq % 2`, written to a temp file and
/// atomically renamed into place, so at every instant at least one slot
/// holds a complete previous generation. [`Self::load_newest`] decodes
/// both slots and returns the valid one with the highest sequence — a
/// corrupted newest generation silently falls back to the previous one.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    tenant: String,
}

/// Outcome of scanning a tenant's checkpoint slots.
#[derive(Debug, Default)]
pub struct LoadOutcome {
    /// The newest valid snapshot, if any slot decoded.
    pub state: Option<PipelineState>,
    /// Decode/read failures from rejected slots (missing files are not
    /// failures). A non-empty list alongside `Some(state)` means recovery
    /// fell back past a corrupt generation.
    pub rejected: Vec<(PathBuf, CheckpointError)>,
}

impl CheckpointStore {
    /// A store rooted at `dir` for the named tenant. Tenant names are
    /// sanitized into filenames (non-alphanumeric bytes become `_`).
    pub fn new(dir: impl Into<PathBuf>, tenant: &str) -> CheckpointStore {
        let safe: String = tenant
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '_' })
            .collect();
        CheckpointStore { dir: dir.into(), tenant: safe }
    }

    /// The two slot file paths, `[slot 0, slot 1]`.
    #[must_use]
    pub fn slot_paths(&self) -> [PathBuf; 2] {
        [
            self.dir.join(format!("{}.a.ckpt", self.tenant)),
            self.dir.join(format!("{}.b.ckpt", self.tenant)),
        ]
    }

    fn slot_for(&self, seq: u64) -> PathBuf {
        let idx = (seq % 2) as usize;
        self.slot_paths()[idx].clone()
    }

    /// Removes both slot files (and stray temp files) — a fresh daemon
    /// bind clears stale generations so they can never leak into a later
    /// recovery.
    ///
    /// # Errors
    ///
    /// Filesystem errors other than not-found.
    pub fn reset(&self) -> Result<(), CheckpointError> {
        for path in self.slot_paths() {
            for p in [path.clone(), path.with_extension("ckpt.tmp")] {
                match std::fs::remove_file(&p) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(CheckpointError::Io(e)),
                }
            }
        }
        Ok(())
    }

    /// Persists one generation: encode, write to a temp file, fsync,
    /// atomically rename into the slot selected by `state.seq`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure; the previous
    /// generation is untouched in either case.
    pub fn write(&self, state: &PipelineState) -> Result<(), CheckpointError> {
        self.write_bytes(state.seq, &encode_state(state))
    }

    /// Deliberately persists a torn (truncated) generation — the chaos
    /// harness's simulation of a crash midway through a checkpoint write
    /// that still managed to surface a partial file. Recovery must reject
    /// it by checksum and fall back to the previous slot.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure.
    pub fn write_torn(&self, state: &PipelineState) -> Result<(), CheckpointError> {
        let full = encode_state(state);
        self.write_bytes(state.seq, &full[..full.len() / 2])
    }

    fn write_bytes(&self, seq: u64, bytes: &[u8]) -> Result<(), CheckpointError> {
        std::fs::create_dir_all(&self.dir)?;
        let dest = self.slot_for(seq);
        let tmp = dest.with_extension("ckpt.tmp");
        {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &dest)?;
        Ok(())
    }

    /// Scans both slots and returns the newest valid generation along
    /// with any rejected slots. Never errors and never panics: a missing
    /// directory or two corrupt slots simply yield `state: None`.
    #[must_use]
    pub fn load_newest(&self) -> LoadOutcome {
        let mut out = LoadOutcome::default();
        for path in self.slot_paths() {
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => {
                    out.rejected.push((path, CheckpointError::Io(e)));
                    continue;
                }
            };
            match decode_state(&bytes) {
                Ok(state) => {
                    let newer = out.state.as_ref().is_none_or(|best| state.seq > best.seq);
                    if newer {
                        out.state = Some(state);
                    }
                }
                Err(e) => out.rejected.push((path, e)),
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Deterministic kill-point chaos harness
// ---------------------------------------------------------------------------

/// A crash-relevant boundary in the tenant pipeline. The `usize` is the
/// global bin index the pipeline is closing or checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// At the entry of `close_bin` for the given bin, before any state
    /// changes — the last checkpoint predates this bin entirely.
    BeforeBinClose(usize),
    /// After the bin closed but before its checkpoint was written — the
    /// durable state is one generation behind the in-memory state.
    BeforeCheckpoint(usize),
    /// A torn checkpoint: the slot for this generation is written
    /// *truncated*, then the process dies — recovery must reject the torn
    /// newest generation and fall back to the previous slot.
    TornCheckpoint(usize),
    /// Immediately after the checkpoint for this bin was durably written.
    AfterCheckpoint(usize),
    /// At the entry of the final flush, after all frames were consumed.
    BeforeFlush,
}

/// How the injected failure presents to the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// Simulated process death: the worker stops on the spot, nothing is
    /// flushed, nothing restarts — the run ends and only
    /// [`Daemon::recover`](crate::Daemon::recover) can continue it.
    Kill,
    /// An ordinary worker panic: the supervisor's restart/quarantine
    /// policy applies.
    Panic,
}

/// One injection rule: fire `kind` at `point`, once or every time.
#[derive(Debug)]
struct CrashRule {
    point: CrashPoint,
    kind: CrashKind,
    repeat: bool,
    fired: AtomicBool,
}

/// Deterministic failure-injection schedule, shared (via `Arc`) between a
/// tenant's successive worker incarnations so one-shot rules stay
/// consumed across restarts.
#[derive(Debug, Default)]
pub struct CrashSchedule {
    rules: Vec<CrashRule>,
}

impl CrashSchedule {
    /// A schedule that kills the process at one crash point, once.
    #[must_use]
    pub fn kill_at(point: CrashPoint) -> Arc<CrashSchedule> {
        Arc::new(CrashSchedule {
            rules: vec![CrashRule {
                point,
                kind: CrashKind::Kill,
                repeat: false,
                fired: AtomicBool::new(false),
            }],
        })
    }

    /// A schedule that panics the worker at one crash point, once.
    #[must_use]
    pub fn panic_at(point: CrashPoint) -> Arc<CrashSchedule> {
        Arc::new(CrashSchedule {
            rules: vec![CrashRule {
                point,
                kind: CrashKind::Panic,
                repeat: false,
                fired: AtomicBool::new(false),
            }],
        })
    }

    /// A schedule that panics the worker *every* time it reaches the
    /// crash point — the quarantine-policy exerciser.
    #[must_use]
    pub fn panic_always_at(point: CrashPoint) -> Arc<CrashSchedule> {
        Arc::new(CrashSchedule {
            rules: vec![CrashRule {
                point,
                kind: CrashKind::Panic,
                repeat: true,
                fired: AtomicBool::new(false),
            }],
        })
    }

    /// Consumes a matching rule at this boundary, returning the failure
    /// kind to inject, or `None` to proceed normally.
    pub fn fire(&self, point: CrashPoint) -> Option<CrashKind> {
        for rule in &self.rules {
            if rule.point == point && (rule.repeat || !rule.fired.swap(true, Ordering::SeqCst)) {
                return Some(rule.kind);
            }
        }
        None
    }
}

/// The panic payload carried by an injected crash; the supervisor
/// downcasts for it to distinguish simulated process death from ordinary
/// worker panics.
#[derive(Debug, Clone, Copy)]
pub struct CrashPayload {
    /// Where the failure fired.
    pub point: CrashPoint,
    /// Kill (no restart) or panic (restartable).
    pub kind: CrashKind,
}

/// Raises an injected crash as a panic carrying [`CrashPayload`]. Only
/// the chaos harness unwinds through here; the supervision boundary in
/// the daemon catches it.
pub(crate) fn trigger_crash(point: CrashPoint, kind: CrashKind) -> ! {
    // lint:allow(no-panic-in-ingest) -- the deterministic chaos-injection point: this unwind is thrown on purpose and caught at the audited supervision boundary in daemon.rs
    panic_any(CrashPayload { point, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        // CARGO_TARGET_TMPDIR exists only for integration tests; unit
        // tests park scratch dirs under the workspace target/ instead.
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp")
            .join(format!("ckpt_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_state(seq: u64) -> PipelineState {
        let key = |p: u16| {
            FlowKey::new(
                IpAddr::from_octets(10, 0, 0, 1),
                IpAddr::from_octets(10, 16, 0, 2),
                p,
                80,
                Protocol::Tcp,
            )
        };
        PipelineState {
            seq,
            frames_ingested: 1234,
            next_close: 7,
            watermark_secs: 2100,
            shard: ShardState {
                bytes: vec![1.5, 0.0, 2.25, 3.5],
                packets: vec![1.0, 0.0, 2.0, 3.0],
                flows: vec![1.0, 0.0, 1.0, 2.0],
                distinct: vec![
                    vec![key(1000)],
                    vec![],
                    vec![key(1001)],
                    vec![key(1002), key(1003)],
                ],
                bin_records: vec![2, 3],
                records_accepted: 5,
                resolution: ResolutionStats {
                    flows_total: 9,
                    flows_resolved: 5,
                    bytes_total: 900,
                    bytes_resolved: 500,
                    transit_skipped: 2,
                },
                dropped_out_of_window: 1,
            },
            quarantine: QuarantineStats {
                frames_offered: 40,
                frames_accepted: 39,
                wrong_version: 1,
                records_offered: 100,
                records_accepted: 99,
                implausible_records: 1,
                ..QuarantineStats::default()
            },
            exporters: vec![(
                3,
                ExporterSeqState {
                    frames: 40,
                    records: 99,
                    lost_flows: 30,
                    sampling_lo: 100,
                    sampling_hi: 100,
                    next_seq: Some(140),
                    last: Some((110, 30)),
                    ..ExporterSeqState::default()
                },
            )],
            detector: Some(DetectorState {
                config: SubspaceConfig::default(),
                model: ModelState {
                    decomp: EigenflowDecomposition {
                        eigenflows: Matrix::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6])
                            .unwrap(),
                        loadings: Matrix::from_vec(2, 2, vec![0.7, 0.8, 0.9, 1.0]).unwrap(),
                        singular_values: vec![5.0, 1.0],
                        centering: Centering { means: vec![1.0, 2.0], scales: vec![1.0, 1.0] },
                        n: 3,
                        total_energy: 26.0,
                        truncated: false,
                    },
                    config: SubspaceConfig::default(),
                    p: 2,
                    spe_threshold: 0.5,
                    t2_threshold: 9.9,
                    degenerate_residual: false,
                },
                window: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
                window_len: 2,
                refit_every: 0,
                since_refit: 1,
                next_bin: 4,
            }),
            live_verdicts: vec![
                StreamVerdict {
                    bin: 0,
                    spe: 0.25,
                    t2: 1.5,
                    detections: vec![Detection {
                        bin: 0,
                        kind: StatisticKind::Spe,
                        value: 0.25,
                        threshold: 0.2,
                    }],
                    degraded: None,
                },
                StreamVerdict {
                    bin: 1,
                    spe: 0.0,
                    t2: 0.0,
                    detections: vec![],
                    degraded: Some(DegradedReason::MaskedBin),
                },
                StreamVerdict {
                    bin: 2,
                    spe: 0.125,
                    t2: 0.75,
                    detections: vec![],
                    degraded: Some(DegradedReason::WidenedThreshold { imputed_fraction: 0.25 }),
                },
            ],
        }
    }

    #[test]
    fn roundtrip_is_byte_stable() {
        let state = sample_state(5);
        let bytes = encode_state(&state);
        let decoded = decode_state(&bytes).unwrap();
        // Canonical codec: re-encoding the decoded state reproduces the
        // exact bytes, so round-trip identity holds for every component.
        assert_eq!(encode_state(&decoded), bytes);
        assert_eq!(decoded.seq, 5);
        assert_eq!(decoded.frames_ingested, 1234);
        assert_eq!(decoded.shard, state.shard);
        assert_eq!(decoded.quarantine, state.quarantine);
        assert_eq!(decoded.exporters, state.exporters);
        assert_eq!(decoded.live_verdicts.len(), 3);
    }

    #[test]
    fn empty_detector_roundtrip() {
        let mut state = sample_state(0);
        state.detector = None;
        state.live_verdicts.clear();
        let bytes = encode_state(&state);
        let decoded = decode_state(&bytes).unwrap();
        assert!(decoded.detector.is_none());
        assert_eq!(encode_state(&decoded), bytes);
    }

    #[test]
    fn header_corruptions_classified() {
        let good = encode_state(&sample_state(1));
        assert!(matches!(decode_state(&[]), Err(CheckpointError::Truncated { .. })));
        assert!(matches!(decode_state(b"NOTCKPT\0rest"), Err(CheckpointError::BadMagic)));

        let mut wrong_version = good.clone();
        wrong_version[8] = 99;
        assert!(matches!(decode_state(&wrong_version), Err(CheckpointError::BadVersion(99))));

        // Truncation anywhere in the payload is caught by length/checksum.
        assert!(decode_state(&good[..good.len() - 3]).is_err());

        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(decode_state(&flipped), Err(CheckpointError::BadChecksum { .. })));

        let mut trailing = good;
        trailing.push(0);
        assert!(matches!(decode_state(&trailing), Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn byte_soup_never_panics_and_never_overallocates() {
        // A declared length of u64::MAX must be rejected by the
        // bytes-present guard, not attempted as an allocation.
        let mut evil = Vec::new();
        evil.extend_from_slice(&CHECKPOINT_MAGIC);
        evil.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        let payload = u64::MAX.to_le_bytes(); // one absurd length field
        evil.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        evil.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        evil.extend_from_slice(&payload);
        assert!(decode_state(&evil).is_err());

        // Deterministic byte soup of many lengths.
        let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
        for len in [0usize, 1, 7, 8, 20, 28, 64, 300] {
            let mut soup = Vec::with_capacity(len);
            for _ in 0..len {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                soup.push(x as u8);
            }
            assert!(decode_state(&soup).is_err(), "soup of len {len} must be rejected");
        }
    }

    #[test]
    fn store_alternates_slots_and_falls_back_past_corruption() {
        let dir = tmp_dir("slots");
        let store = CheckpointStore::new(&dir, "abilene");
        assert!(store.load_newest().state.is_none(), "empty dir loads nothing");

        store.write(&sample_state(0)).unwrap();
        store.write(&sample_state(1)).unwrap();
        store.write(&sample_state(2)).unwrap();
        let [a, b] = store.slot_paths();
        assert!(a.exists() && b.exists(), "both slots populated");
        assert_eq!(store.load_newest().state.unwrap().seq, 2);

        // Corrupt the newest generation (seq 2 lives in slot a): recovery
        // must fall back to seq 1 and report the rejected slot.
        let mut bytes = std::fs::read(&a).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&a, &bytes).unwrap();
        let out = store.load_newest();
        assert_eq!(out.state.unwrap().seq, 1, "falls back to previous generation");
        assert_eq!(out.rejected.len(), 1);
        assert!(matches!(out.rejected[0].1, CheckpointError::BadChecksum { .. }));

        // A torn write (truncated file) is likewise rejected; seq 3 tears
        // over slot b (the last valid generation), so with slot a already
        // corrupt nothing is loadable — and still nothing panics.
        store.write_torn(&sample_state(3)).unwrap();
        let out = store.load_newest();
        assert!(out.state.is_none());
        assert_eq!(out.rejected.len(), 2);
        // A subsequent good generation makes the store healthy again.
        store.write(&sample_state(4)).unwrap();
        assert_eq!(store.load_newest().state.unwrap().seq, 4);

        // Reset clears every generation.
        store.reset().unwrap();
        assert!(store.load_newest().state.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_schedule_consumes_one_shot_rules() {
        let s = CrashSchedule::kill_at(CrashPoint::AfterCheckpoint(7));
        assert!(s.fire(CrashPoint::BeforeFlush).is_none());
        assert!(s.fire(CrashPoint::AfterCheckpoint(6)).is_none());
        assert_eq!(s.fire(CrashPoint::AfterCheckpoint(7)), Some(CrashKind::Kill));
        assert!(s.fire(CrashPoint::AfterCheckpoint(7)).is_none(), "one-shot rule consumed");

        let p = CrashSchedule::panic_always_at(CrashPoint::BeforeBinClose(3));
        assert_eq!(p.fire(CrashPoint::BeforeBinClose(3)), Some(CrashKind::Panic));
        assert_eq!(p.fire(CrashPoint::BeforeBinClose(3)), Some(CrashKind::Panic));
    }

    #[test]
    fn error_display_is_informative() {
        let e = CheckpointError::Truncated { needed: 10, have: 3 };
        assert!(e.to_string().contains("needed 10"));
        assert!(CheckpointError::BadMagic.to_string().contains("magic"));
        assert!(CheckpointError::BadVersion(9).to_string().contains('9'));
        let c = CheckpointError::BadChecksum { expected: 1, got: 2 };
        assert!(c.to_string().contains("mismatch"));
        assert!(CheckpointError::Corrupt("tag".into()).to_string().contains("tag"));
    }
}
