//! The long-running multi-tenant detection daemon.
//!
//! Topology of one running daemon:
//!
//! ```text
//!  UDP socket ──┐                 ┌─ bounded queue ─ tenant 0 worker ─ binner ─ detector
//!  TCP streams ─┼─ tenant router ─┼─ bounded queue ─ tenant 1 worker ─ binner ─ detector
//!  (listeners)  │   (admission)   └─ ...
//!  metrics HTTP ┘
//! ```
//!
//! Listener tasks own the sockets and do nothing but envelope parsing and
//! queue admission — never decoding, never blocking on a full queue.
//! Each tenant worker owns its [`TenantPipeline`] outright, so the whole
//! measurement path is single-threaded per tenant and deterministic.
//! All tasks run on the daemon's own [`scoped_pool::Pool`], sized to the
//! task count (every task is a long-lived loop; a smaller pool would
//! deadlock).
//!
//! ## Shutdown contract
//!
//! A drain request — [`DaemonHandle::drain`], or the wire control message
//! ([`crate::wire::CONTROL_DRAIN`] addressed to
//! [`CONTROL_TENANT`]) on either transport — stops the listeners, closes
//! the tenant queues, and lets each worker consume its backlog to the
//! end before flushing. Frames admitted before the drain are never lost;
//! frames arriving after it are refused by the closed queues and
//! counted. [`Daemon::run`] returns only when every tenant has flushed.

use crate::checkpoint::{CheckpointStore, CrashKind, CrashPayload, CrashPoint};
use crate::metrics::{monotonic_now, ServeMetrics, TenantCounters};
use crate::queue::{BoundedQueue, Pop};
use crate::tenant::{TenantConfig, TenantFlush, TenantPipeline};
use crate::wire::{self, MessageReader, CONTROL_TENANT};
use crate::ServeError;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// One tenant's full provisioning: detection configuration plus the
/// routing state its resolver needs.
#[derive(Debug)]
pub struct TenantSpec {
    /// Pipeline and detection configuration.
    pub config: TenantConfig,
    /// The tenant's backbone topology (defines its OD space).
    pub topology: odflow_net::Topology,
    /// Ingress attribution state.
    pub ingress: odflow_net::IngressResolver,
    /// Egress longest-prefix-match table.
    pub routes: odflow_net::RouteTable,
}

/// Daemon-level configuration.
#[derive(Debug)]
pub struct ServeConfig {
    /// UDP bind address (e.g. `127.0.0.1:0`); `None` disables UDP.
    pub udp_bind: Option<String>,
    /// TCP bind address; `None` disables TCP.
    pub tcp_bind: Option<String>,
    /// Metrics HTTP bind address; `None` disables the endpoint.
    pub metrics_bind: Option<String>,
    /// The hosted tenants, in tenant-index (wire envelope byte) order.
    pub tenants: Vec<TenantSpec>,
    /// Poll granularity for socket timeouts and worker wakeups.
    pub tick: Duration,
    /// Start with tenant workers paused (admission keeps running) — used
    /// by the backpressure tests to fill queues deterministically. A
    /// drain overrides the pause so shutdown always completes.
    pub start_paused: bool,
    /// Directory for per-tenant crash-safety checkpoints; `None` disables
    /// checkpointing. A fresh [`Daemon::bind`] clears any stale
    /// generations in it; [`Daemon::recover`] resumes from them instead.
    pub checkpoint_dir: Option<PathBuf>,
    /// Consecutive worker panics (without bin progress in between) before
    /// a tenant is quarantined instead of restarted.
    pub max_restarts: u32,
    /// Base delay between worker restarts; doubles per consecutive
    /// attempt, plus deterministic jitter.
    pub restart_backoff: Duration,
    /// Seed of the deterministic restart jitter.
    pub restart_jitter_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            udp_bind: None,
            tcp_bind: None,
            metrics_bind: None,
            tenants: Vec::new(),
            tick: Duration::from_millis(5),
            start_paused: false,
            checkpoint_dir: None,
            max_restarts: 3,
            restart_backoff: Duration::from_millis(2),
            restart_jitter_seed: 0x0df1_0c4e_c4e5_eed5,
        }
    }
}

/// Shared control/observation state behind [`DaemonHandle`].
#[derive(Debug)]
struct Control {
    draining: AtomicBool,
    paused: AtomicBool,
    metrics: ServeMetrics,
}

/// A cloneable handle for controlling and observing a running daemon
/// from other threads.
#[derive(Debug, Clone)]
pub struct DaemonHandle {
    control: Arc<Control>,
}

impl DaemonHandle {
    /// Requests a graceful drain-and-flush shutdown.
    pub fn drain(&self) {
        self.control.draining.store(true, Ordering::SeqCst);
    }

    /// `true` once a drain has been requested.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.control.draining.load(Ordering::SeqCst)
    }

    /// Pauses tenant workers (admission keeps running).
    pub fn pause(&self) {
        self.control.paused.store(true, Ordering::SeqCst);
    }

    /// Resumes paused tenant workers.
    pub fn resume(&self) {
        self.control.paused.store(false, Ordering::SeqCst);
    }

    /// The current metrics page, identical to `GET /metrics`.
    #[must_use]
    pub fn metrics_text(&self) -> String {
        self.control.metrics.render()
    }

    /// The counter block of tenant `idx`.
    #[must_use]
    pub fn tenant_counters(&self, idx: usize) -> Option<Arc<TenantCounters>> {
        self.control.metrics.tenant(idx).map(Arc::clone)
    }

    /// p99 upper bound of the admission enqueue-latency histogram, in
    /// nanoseconds (0 until a frame has been enqueued).
    #[must_use]
    pub fn enqueue_p99_nanos(&self) -> u64 {
        self.control.metrics.enqueue_latency.quantile(0.99)
    }
}

/// How one tenant's pipeline ended.
#[derive(Debug)]
pub enum TenantEnd {
    /// The pipeline drained and flushed normally.
    Flushed(Box<TenantFlush>),
    /// The flush failed (e.g. a window that never accepted a record), or
    /// the tenant was quarantined after panicking persistently.
    Failed {
        /// The tenant's name.
        name: String,
        /// Why the flush failed.
        reason: String,
    },
    /// A chaos-injected simulated process death ([`CrashKind::Kill`]):
    /// the worker stopped on the spot — no flush, no restart. Only
    /// [`Daemon::recover`] continues from here, exactly as a real
    /// `kill -9` would leave things.
    Killed {
        /// The tenant's name.
        name: String,
        /// The crash point that fired.
        point: CrashPoint,
    },
}

/// What [`Daemon::recover`] found for one tenant.
#[derive(Debug)]
pub struct TenantRecovery {
    /// The tenant's name.
    pub tenant: String,
    /// Sequence number of the generation resumed from; `None` when no
    /// valid checkpoint existed (the tenant restarts from scratch).
    pub resumed_seq: Option<u64>,
    /// The replay cursor: frames of the original stream already covered
    /// by the resumed state.
    pub frames_ingested: u64,
    /// Checkpoint slots rejected as torn/corrupt during the scan. Greater
    /// than zero alongside `resumed_seq: Some(..)` means recovery fell
    /// back past a corrupt newest generation.
    pub slots_rejected: usize,
}

/// Everything a drained daemon returns, tenants in index order.
#[derive(Debug)]
pub struct DaemonReport {
    /// Per-tenant end states.
    pub tenants: Vec<TenantEnd>,
}

/// A frame admitted to a tenant queue, stamped for latency accounting.
#[derive(Debug)]
struct QueuedFrame {
    frame: Vec<u8>,
    queued: Instant,
}

/// A bound-but-not-yet-running daemon. Binding is separate from running
/// so callers can read the ephemeral socket addresses (port 0 binds)
/// before traffic starts.
#[derive(Debug)]
pub struct Daemon {
    control: Arc<Control>,
    pipelines: Vec<TenantPipeline>,
    /// Retained provisioning, one per pipeline — the supervisor rebuilds
    /// a panicked tenant's pipeline from its spec.
    specs: Vec<TenantSpec>,
    /// Checkpoint stores, one per pipeline (`None` when disabled).
    stores: Vec<Option<CheckpointStore>>,
    policy: RestartPolicy,
    queue_caps: Vec<usize>,
    udp: Option<UdpSocket>,
    tcp: Option<TcpListener>,
    metrics_listener: Option<TcpListener>,
    tick: Duration,
}

/// The supervisor's restart parameters, lifted off [`ServeConfig`].
#[derive(Debug, Clone, Copy)]
struct RestartPolicy {
    max_restarts: u32,
    backoff: Duration,
    jitter_seed: u64,
}

impl Daemon {
    /// Builds every tenant pipeline and binds the configured sockets.
    /// With a `checkpoint_dir`, stale checkpoint generations are cleared
    /// (a fresh bind must never resume someone else's state) and every
    /// bin close writes a new one.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Config`] for an empty tenant list or more tenants
    ///   than the one-byte envelope can address.
    /// * [`ServeError::Io`] on bind failure.
    /// * [`ServeError::Flow`] on invalid tenant pipeline configuration.
    pub fn bind(config: ServeConfig) -> Result<Daemon, ServeError> {
        Ok(Self::bind_inner(config, false)?.0)
    }

    /// Binds like [`Self::bind`], but resumes every tenant from its
    /// newest **valid** checkpoint generation in `dir` — the crash-safe
    /// restart path. A tenant with no usable generation starts fresh.
    /// Replaying each tenant's original frame stream from its
    /// [`TenantRecovery::frames_ingested`] cursor onward reproduces the
    /// uninterrupted run bit for bit.
    ///
    /// # Errors
    ///
    /// As [`Self::bind`]; additionally [`ServeError::Config`] when a
    /// structurally valid checkpoint disagrees with the tenant's window
    /// configuration. Corrupt/torn checkpoint files are *not* errors —
    /// they are skipped and reported in [`TenantRecovery::slots_rejected`].
    pub fn recover(
        mut config: ServeConfig,
        dir: &Path,
    ) -> Result<(Daemon, Vec<TenantRecovery>), ServeError> {
        config.checkpoint_dir = Some(dir.to_path_buf());
        Self::bind_inner(config, true)
    }

    fn bind_inner(
        config: ServeConfig,
        recovering: bool,
    ) -> Result<(Daemon, Vec<TenantRecovery>), ServeError> {
        if config.tenants.is_empty() {
            return Err(ServeError::Config("at least one tenant is required".to_owned()));
        }
        if config.tenants.len() >= usize::from(CONTROL_TENANT) {
            return Err(ServeError::Config(format!(
                "at most {} tenants fit the one-byte envelope",
                usize::from(CONTROL_TENANT) - 1
            )));
        }
        let queue_caps: Vec<usize> = config.tenants.iter().map(|s| s.config.queue_frames).collect();
        let stores: Vec<Option<CheckpointStore>> = config
            .tenants
            .iter()
            .map(|s| {
                config.checkpoint_dir.as_ref().map(|d| CheckpointStore::new(d, &s.config.name))
            })
            .collect();
        let mut pipelines = Vec::with_capacity(config.tenants.len());
        let mut recoveries = Vec::with_capacity(config.tenants.len());
        for (spec, store) in config.tenants.iter().zip(&stores) {
            let mut pipeline = if recovering {
                let outcome = store.as_ref().map(CheckpointStore::load_newest).unwrap_or_default();
                recoveries.push(TenantRecovery {
                    tenant: spec.config.name.clone(),
                    resumed_seq: outcome.state.as_ref().map(|s| s.seq),
                    frames_ingested: outcome.state.as_ref().map_or(0, |s| s.frames_ingested),
                    slots_rejected: outcome.rejected.len(),
                });
                match outcome.state {
                    Some(state) => TenantPipeline::restore(
                        spec.config.clone(),
                        &spec.topology,
                        spec.ingress.clone(),
                        spec.routes.clone(),
                        &state,
                        Arc::new(TenantCounters::default()),
                    )?,
                    None => TenantPipeline::new(
                        spec.config.clone(),
                        &spec.topology,
                        spec.ingress.clone(),
                        spec.routes.clone(),
                    )?,
                }
            } else {
                if let Some(s) = store {
                    s.reset().map_err(|e| {
                        ServeError::Config(format!("clearing stale checkpoints: {e}"))
                    })?;
                }
                TenantPipeline::new(
                    spec.config.clone(),
                    &spec.topology,
                    spec.ingress.clone(),
                    spec.routes.clone(),
                )?
            };
            if let Some(s) = store {
                pipeline.set_checkpoint_store(s.clone());
            }
            pipelines.push(pipeline);
        }
        let metrics = ServeMetrics {
            tenants: pipelines.iter().map(|p| (p.name().to_owned(), p.counters())).collect(),
            ..ServeMetrics::default()
        };
        let udp = match &config.udp_bind {
            Some(addr) => Some(UdpSocket::bind(addr.as_str())?),
            None => None,
        };
        let tcp = match &config.tcp_bind {
            Some(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let metrics_listener = match &config.metrics_bind {
            Some(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        Ok((
            Daemon {
                control: Arc::new(Control {
                    draining: AtomicBool::new(false),
                    paused: AtomicBool::new(config.start_paused),
                    metrics,
                }),
                pipelines,
                specs: config.tenants,
                stores,
                policy: RestartPolicy {
                    max_restarts: config.max_restarts,
                    backoff: config.restart_backoff,
                    jitter_seed: config.restart_jitter_seed,
                },
                queue_caps,
                udp,
                tcp,
                metrics_listener,
                tick: config.tick,
            },
            recoveries,
        ))
    }

    /// The bound UDP address, when UDP is enabled.
    #[must_use]
    pub fn udp_addr(&self) -> Option<SocketAddr> {
        self.udp.as_ref().and_then(|s| s.local_addr().ok())
    }

    /// The bound TCP address, when TCP is enabled.
    #[must_use]
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// The bound metrics address, when the endpoint is enabled.
    #[must_use]
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// A control/observation handle, cloneable across threads.
    #[must_use]
    pub fn handle(&self) -> DaemonHandle {
        DaemonHandle { control: Arc::clone(&self.control) }
    }

    /// Runs the daemon to completion: serves until a drain request,
    /// drains every queue, flushes every tenant, and reports. Blocks the
    /// calling thread; use [`Self::handle`] (taken before `run`) to
    /// control the daemon from elsewhere.
    #[must_use]
    pub fn run(self) -> DaemonReport {
        let Daemon {
            control,
            pipelines,
            specs,
            stores,
            policy,
            queue_caps,
            udp,
            tcp,
            metrics_listener,
            tick,
        } = self;
        let n = pipelines.len();
        let queues: Vec<Arc<BoundedQueue<QueuedFrame>>> =
            queue_caps.iter().map(|&c| Arc::new(BoundedQueue::new(c))).collect();
        let results: Mutex<Vec<Option<TenantEnd>>> = Mutex::new((0..n).map(|_| None).collect());
        let listener_count = usize::from(udp.is_some()) + usize::from(tcp.is_some());
        let sources = AtomicUsize::new(listener_count);
        let n_tasks = listener_count + usize::from(metrics_listener.is_some()) + n;
        let pool = scoped_pool::Pool::new(n_tasks.max(1));

        let admission = Admission { control: &control, queues: &queues };
        pool.scoped(|scope| {
            let adm = &admission;
            let sources_ref = &sources;
            let queues_ref = &queues;
            let close_on_last_source = move || {
                if sources_ref.fetch_sub(1, Ordering::AcqRel) == 1 {
                    for q in queues_ref {
                        q.close();
                    }
                }
            };
            if let Some(socket) = udp {
                scope.execute(move || {
                    run_udp_listener(&socket, adm, tick);
                    close_on_last_source();
                });
            }
            if let Some(listener) = tcp {
                scope.execute(move || {
                    run_tcp_listener(&listener, adm, tick);
                    close_on_last_source();
                });
            }
            if let Some(listener) = metrics_listener {
                let control_ref = &control;
                scope.execute(move || run_metrics_endpoint(&listener, control_ref, tick));
            }
            let tenants = pipelines.into_iter().zip(specs).zip(stores);
            for (idx, ((pipeline, spec), store)) in tenants.enumerate() {
                let queue = Arc::clone(&queues[idx]);
                let control_ref = &control;
                let results_ref = &results;
                scope.execute(move || {
                    let supervisor = Supervisor {
                        spec,
                        store,
                        policy,
                        queue,
                        control: control_ref,
                        sources: sources_ref,
                        tick,
                    };
                    let end = supervisor.run(pipeline);
                    let mut slots = results_ref.lock().unwrap_or_else(PoisonError::into_inner);
                    if let Some(slot) = slots.get_mut(idx) {
                        *slot = Some(end);
                    }
                });
            }
        });
        pool.shutdown();

        let slots = results.into_inner().unwrap_or_else(PoisonError::into_inner);
        DaemonReport {
            tenants: slots
                .into_iter()
                .map(|s| {
                    s.unwrap_or(TenantEnd::Failed {
                        name: String::new(),
                        reason: "worker never reported".to_owned(),
                    })
                })
                .collect(),
        }
    }
}

/// The shared admission path: envelope → control or tenant queue.
struct Admission<'a> {
    control: &'a Control,
    queues: &'a [Arc<BoundedQueue<QueuedFrame>>],
}

impl Admission<'_> {
    fn draining(&self) -> bool {
        self.control.draining.load(Ordering::SeqCst)
    }

    /// Routes one enveloped frame. Never blocks: a full queue sheds the
    /// frame and counts the drop.
    fn admit(&self, tenant: u8, frame: &[u8]) {
        if tenant == CONTROL_TENANT {
            if wire::is_drain_control(tenant, frame) {
                TenantCounters::add(&self.control.metrics.control_messages, 1);
                self.control.draining.store(true, Ordering::SeqCst);
            } else {
                TenantCounters::add(&self.control.metrics.envelope_errors, 1);
            }
            return;
        }
        let idx = usize::from(tenant);
        let (Some(queue), Some(counters)) =
            (self.queues.get(idx), self.control.metrics.tenant(idx))
        else {
            TenantCounters::add(&self.control.metrics.unknown_tenant, 1);
            return;
        };
        TenantCounters::add(&counters.frames_offered, 1);
        let item = QueuedFrame { frame: frame.to_vec(), queued: monotonic_now() };
        if queue.try_push(item).is_ok() {
            TenantCounters::add(&counters.frames_enqueued, 1);
            let depth = queue.len() as u64;
            TenantCounters::set(&counters.queue_depth, depth);
            TenantCounters::raise(&counters.queue_depth_peak, depth);
        } else {
            TenantCounters::add(&counters.frames_dropped_backpressure, 1);
        }
    }
}

/// UDP listener loop: one datagram, one envelope, one admission.
fn run_udp_listener(socket: &UdpSocket, adm: &Admission<'_>, tick: Duration) {
    if socket.set_read_timeout(Some(tick)).is_err() {
        TenantCounters::add(&adm.control.metrics.io_errors, 1);
        return;
    }
    let mut buf = vec![0u8; 65536];
    while !adm.draining() {
        match socket.recv_from(&mut buf) {
            Ok((len, _peer)) => {
                TenantCounters::add(&adm.control.metrics.udp_datagrams, 1);
                match wire::decode_datagram(&buf[..len]) {
                    Some((tenant, frame)) => adm.admit(tenant, frame),
                    None => TenantCounters::add(&adm.control.metrics.envelope_errors, 1),
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => {
                TenantCounters::add(&adm.control.metrics.io_errors, 1);
                std::thread::sleep(tick);
            }
        }
    }
}

/// TCP listener loop: non-blocking accept plus a round-robin read sweep
/// over the open connections, reassembling length-prefixed messages.
///
/// The drain flag is sampled at the top of each sweep and honoured at
/// the bottom, so the sweep that *parses* a drain message still finishes
/// processing every connection's already-received bytes, and one final
/// full sweep runs after the flag is seen — messages sent before the
/// drain on any connection are admitted before the listener exits.
fn run_tcp_listener(listener: &TcpListener, adm: &Admission<'_>, tick: Duration) {
    let mut conns: Vec<(TcpStream, MessageReader)> = Vec::new();
    let mut buf = vec![0u8; 65536];
    loop {
        let draining = adm.draining();
        let mut progressed = false;
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        TenantCounters::add(&adm.control.metrics.io_errors, 1);
                        continue;
                    }
                    TenantCounters::add(&adm.control.metrics.tcp_connections, 1);
                    conns.push((stream, MessageReader::new()));
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => {
                    TenantCounters::add(&adm.control.metrics.io_errors, 1);
                    break;
                }
            }
        }
        let mut i = 0;
        while i < conns.len() {
            let mut drop_conn = false;
            while let Some((stream, reader)) = conns.get_mut(i) {
                match stream.read(&mut buf) {
                    Ok(0) => {
                        drop_conn = true;
                        break;
                    }
                    Ok(nread) => {
                        progressed = true;
                        reader.extend(&buf[..nread]);
                        loop {
                            match reader.next_message() {
                                Ok(Some((tenant, frame))) => {
                                    TenantCounters::add(&adm.control.metrics.tcp_messages, 1);
                                    adm.admit(tenant, &frame);
                                }
                                Ok(None) => break,
                                Err(_oversized) => {
                                    TenantCounters::add(&adm.control.metrics.envelope_errors, 1);
                                    drop_conn = true;
                                    break;
                                }
                            }
                        }
                        if drop_conn {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => {
                        TenantCounters::add(&adm.control.metrics.io_errors, 1);
                        drop_conn = true;
                        break;
                    }
                }
            }
            if drop_conn {
                conns.swap_remove(i);
            } else {
                i += 1;
            }
        }
        if draining {
            break;
        }
        if !progressed {
            std::thread::sleep(tick);
        }
    }
}

/// Metrics endpoint loop: a hand-rolled HTTP/1.0 responder for
/// `GET /metrics` (anything else is a 404).
fn run_metrics_endpoint(listener: &TcpListener, control: &Control, tick: Duration) {
    while !control.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => serve_metrics_client(stream, control),
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(tick),
            Err(_) => {
                TenantCounters::add(&control.metrics.io_errors, 1);
                std::thread::sleep(tick);
            }
        }
    }
}

/// Serves one metrics client with bounded patience. The request must fit
/// [`METRICS_REQUEST_CAP`] bytes and complete its header block
/// (`\r\n\r\n`) within [`METRICS_READ_DEADLINE`]; a client that idles,
/// trickles bytes, or never terminates is reaped (connection dropped,
/// counted) instead of parking the endpoint thread — one slow scraper
/// must never block every other scraper behind it.
fn serve_metrics_client(mut stream: TcpStream, control: &Control) {
    /// Largest request the endpoint accepts; `GET /metrics HTTP/1.0` plus
    /// ordinary scraper headers is a few hundred bytes.
    const METRICS_REQUEST_CAP: usize = 1024;
    /// Total time a client gets to deliver a complete request.
    const METRICS_READ_DEADLINE: Duration = Duration::from_millis(250);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_write_timeout(Some(METRICS_READ_DEADLINE));
    let deadline = monotonic_now() + METRICS_READ_DEADLINE;
    let mut req = [0u8; METRICS_REQUEST_CAP];
    let mut have = 0usize;
    let complete = loop {
        if have >= req.len() || monotonic_now() >= deadline {
            break false;
        }
        match stream.read(&mut req[have..]) {
            Ok(0) => break false,
            Ok(n) => {
                have += n;
                if req[..have].windows(4).any(|w| w == b"\r\n\r\n") {
                    break true;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => {
                TenantCounters::add(&control.metrics.io_errors, 1);
                break false;
            }
        }
    };
    if !complete {
        TenantCounters::add(&control.metrics.metrics_clients_reaped, 1);
        return;
    }
    let (status, body) = if req[..have].starts_with(b"GET /metrics") {
        ("200 OK", control.metrics.render())
    } else {
        ("404 Not Found", "not found\n".to_owned())
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    if stream.write_all(response.as_bytes()).is_err() {
        TenantCounters::add(&control.metrics.io_errors, 1);
    }
}

/// One tenant's supervision boundary: runs the worker under panic
/// containment and applies the restart/quarantine policy.
///
/// The worker owns its pipeline outright, so a panic can corrupt nothing
/// beyond that pipeline — it is dropped mid-unwind and a successor is
/// rebuilt from the tenant's newest checkpoint (or fresh), against the
/// *surviving* queue, sharing the predecessor's counter block. Other
/// tenants never notice. Policy:
///
/// * an injected [`CrashKind::Kill`] is simulated process death — report
///   [`TenantEnd::Killed`] with no flush and no restart;
/// * any other panic restarts the worker after a bounded, seeded-jitter
///   backoff;
/// * a panic that follows bin progress resets the consecutive count — a
///   tenant making headway is worth restarting indefinitely;
/// * more than `max_restarts` consecutive panics without progress
///   quarantines the tenant (`quarantined` gauge set, frames shed as
///   backpressure) so a poison-pill frame cannot melt the daemon.
struct Supervisor<'a> {
    spec: TenantSpec,
    store: Option<CheckpointStore>,
    policy: RestartPolicy,
    queue: Arc<BoundedQueue<QueuedFrame>>,
    control: &'a Control,
    sources: &'a AtomicUsize,
    tick: Duration,
}

impl Supervisor<'_> {
    fn run(self, mut pipeline: TenantPipeline) -> TenantEnd {
        let counters = pipeline.counters();
        let name = self.spec.config.name.clone();
        let mut consecutive: u32 = 0;
        let mut attempt: u64 = 0;
        loop {
            let bins_before = TenantCounters::get(&counters.bins_closed);
            // lint:allow(no-panic-in-ingest) -- the audited supervision boundary: this is the one place worker unwinds are caught, classified, and turned into restart/quarantine policy
            let result = catch_unwind(AssertUnwindSafe(|| {
                run_tenant_worker(pipeline, &self.queue, self.control, self.sources, self.tick)
            }));
            let payload = match result {
                Ok(end) => return end,
                Err(payload) => payload,
            };
            if let Some(crash) = payload.downcast_ref::<CrashPayload>() {
                if crash.kind == CrashKind::Kill {
                    return TenantEnd::Killed { name, point: crash.point };
                }
            }
            attempt += 1;
            TenantCounters::add(&counters.restarts, 1);
            let progressed = TenantCounters::get(&counters.bins_closed) > bins_before;
            consecutive = if progressed { 1 } else { consecutive + 1 };
            if consecutive > self.policy.max_restarts {
                TenantCounters::set(&counters.quarantined, 1);
                return TenantEnd::Failed {
                    name,
                    reason: format!("quarantined after {consecutive} consecutive worker panics"),
                };
            }
            std::thread::sleep(restart_backoff(self.policy, attempt));
            match rebuild_pipeline(&self.spec, self.store.as_ref(), &counters) {
                Ok(successor) => pipeline = successor,
                Err(e) => {
                    return TenantEnd::Failed { name, reason: format!("restart failed: {e}") }
                }
            }
        }
    }
}

/// Rebuilds a tenant pipeline for a restarted worker: from the newest
/// valid checkpoint when one exists, fresh otherwise — threading the
/// predecessor's counter block and checkpoint store through.
fn rebuild_pipeline(
    spec: &TenantSpec,
    store: Option<&CheckpointStore>,
    counters: &Arc<TenantCounters>,
) -> Result<TenantPipeline, ServeError> {
    let restored = store.map(CheckpointStore::load_newest).and_then(|o| o.state);
    let mut pipeline = match restored {
        Some(state) => TenantPipeline::restore(
            spec.config.clone(),
            &spec.topology,
            spec.ingress.clone(),
            spec.routes.clone(),
            &state,
            Arc::clone(counters),
        )?,
        None => {
            let mut fresh = TenantPipeline::new(
                spec.config.clone(),
                &spec.topology,
                spec.ingress.clone(),
                spec.routes.clone(),
            )?;
            fresh.set_counters(Arc::clone(counters));
            fresh
        }
    };
    if let Some(s) = store {
        pipeline.set_checkpoint_store(s.clone());
    }
    Ok(pipeline)
}

/// Exponential backoff with deterministic splitmix64 jitter: attempt `k`
/// sleeps `backoff * 2^min(k-1, 6)` plus up to one extra `backoff` of
/// seeded jitter, so restarting tenants don't stampede in lockstep yet
/// every run of the test suite sleeps identically.
fn restart_backoff(policy: RestartPolicy, attempt: u64) -> Duration {
    let exp = u32::try_from(attempt.saturating_sub(1).min(6)).unwrap_or(6);
    let base = policy.backoff.saturating_mul(1 << exp);
    let span = u64::try_from(policy.backoff.as_nanos()).unwrap_or(u64::MAX).max(1);
    base + Duration::from_nanos(splitmix64(policy.jitter_seed ^ attempt) % span)
}

/// SplitMix64 — the workspace's stateless jitter/hash primitive.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Tenant worker loop: dequeue, stamp latency, ingest; on queue closure
/// (or an idle drain with no listeners left) flush and report.
fn run_tenant_worker(
    mut pipeline: TenantPipeline,
    queue: &BoundedQueue<QueuedFrame>,
    control: &Control,
    sources: &AtomicUsize,
    tick: Duration,
) -> TenantEnd {
    let counters = pipeline.counters();
    loop {
        // A pause holds the worker (admission keeps filling the queue);
        // a drain overrides it so shutdown always completes.
        if control.paused.load(Ordering::SeqCst) && !control.draining.load(Ordering::SeqCst) {
            std::thread::sleep(tick);
            continue;
        }
        match queue.pop_timeout(tick) {
            Pop::Item(item) => {
                let nanos = u64::try_from(item.queued.elapsed().as_nanos()).unwrap_or(u64::MAX);
                control.metrics.enqueue_latency.record(nanos);
                pipeline.ingest_frame(&item.frame);
                TenantCounters::set(&counters.queue_depth, queue.len() as u64);
            }
            Pop::Empty => {
                // With no listeners configured nobody closes the queues;
                // an idle drain is the end of input.
                if control.draining.load(Ordering::SeqCst)
                    && sources.load(Ordering::Acquire) == 0
                    && queue.is_empty()
                {
                    break;
                }
            }
            Pop::Closed => break,
        }
    }
    let name = pipeline.name().to_owned();
    match pipeline.flush() {
        Ok(flush) => TenantEnd::Flushed(Box::new(flush)),
        Err(e) => TenantEnd::Failed { name, reason: e.to_string() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odflow_net::IngressResolver;

    fn spec(name: &str, num_bins: usize) -> TenantSpec {
        let scenario = odflow_gen::Scenario::paper_window(5, num_bins).unwrap();
        let routes = scenario.plan.build_route_table(1.0).unwrap();
        let ingress = IngressResolver::synthetic(&scenario.topology);
        TenantSpec {
            config: TenantConfig::abilene(name, 0, num_bins),
            topology: scenario.topology,
            ingress,
            routes,
        }
    }

    #[test]
    fn bind_rejects_degenerate_configs() {
        assert!(matches!(Daemon::bind(ServeConfig::default()), Err(ServeError::Config(_))));
    }

    #[test]
    fn bound_daemon_exposes_ephemeral_addresses() {
        let config = ServeConfig {
            udp_bind: Some("127.0.0.1:0".to_owned()),
            tcp_bind: Some("127.0.0.1:0".to_owned()),
            metrics_bind: Some("127.0.0.1:0".to_owned()),
            tenants: vec![spec("t0", 6)],
            ..ServeConfig::default()
        };
        let daemon = Daemon::bind(config).unwrap();
        assert!(daemon.udp_addr().is_some());
        assert!(daemon.tcp_addr().is_some());
        assert!(daemon.metrics_addr().is_some());
        let handle = daemon.handle();
        assert!(!handle.is_draining());
        assert!(handle.tenant_counters(0).is_some());
        assert!(handle.tenant_counters(1).is_none());
        assert!(handle.metrics_text().contains("tenant=\"t0\""));
    }

    #[test]
    fn idle_drain_reports_empty_window_failure() {
        // No listeners, no frames: drain immediately; the flush fails
        // with NoData and the daemon reports it rather than panicking.
        let daemon =
            Daemon::bind(ServeConfig { tenants: vec![spec("t0", 6)], ..ServeConfig::default() })
                .unwrap();
        let handle = daemon.handle();
        handle.drain();
        let report = daemon.run();
        assert_eq!(report.tenants.len(), 1);
        assert!(matches!(
            &report.tenants[0],
            TenantEnd::Failed { name, .. } if name == "t0"
        ));
    }
}
