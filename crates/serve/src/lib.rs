//! # odflow-serve — the detector-as-a-service daemon
//!
//! The paper frames the subspace method as an *operational* tool: a
//! network operations center watching OD-flow traffic arrive
//! continuously, not a batch experiment. This crate is that serving
//! layer: a long-running process that accepts NetFlow v5 export frames
//! over UDP datagrams and length-prefixed TCP streams (hand-rolled on
//! `std::net` — the workspace is offline, no async runtime), routes each
//! frame to a per-tenant pipeline over a bounded queue, and drives the
//! existing ingest machinery — `decode_datagram_lossy` →
//! [`BinShard`](odflow_flow::BinShard) →
//! [`OnlineDetector`](odflow_subspace::OnlineDetector) — as bins close.
//!
//! Design invariants, in order of importance:
//!
//! 1. **Never panic on wire input.** Every byte that arrives off a
//!    socket flows into the quarantine/`DataQuality` accounting of
//!    `odflow_flow`; the `no-panic-in-ingest` lint rule covers this
//!    crate's sources.
//! 2. **Never grow without bound.** Every inter-stage queue is a
//!    [`BoundedQueue`]; overload drops frames *and counts them* per
//!    tenant instead of buffering to death.
//! 3. **Deterministic end state.** Per tenant, frames are decoded
//!    serially in arrival order and records fill a single full-window
//!    shard, so the drained daemon's matrices and diagnosis are
//!    byte-identical to the batch `run_scenario` path for the same frame
//!    stream — for any `ODFLOW_THREADS`.
//! 4. **Observable.** A hand-rolled HTTP/1.0 `GET /metrics` endpoint
//!    exposes ingest rates, quarantine counters, queue depths/drops, bin
//!    lag, per-stage timings, and SPE/T² alarm counts as plain text.
//! 5. **Crash-safe.** With a checkpoint directory configured, every bin
//!    close persists the full per-tenant pipeline state as a versioned,
//!    checksummed, two-generation snapshot ([`checkpoint`]);
//!    [`Daemon::recover`] resumes from the newest valid generation
//!    bit-identically, workers panic-restart under supervision, and
//!    persistently panicking tenants are quarantined without touching
//!    their neighbours.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod daemon;
pub mod loadgen;
pub mod metrics;
pub mod queue;
pub mod tenant;
pub mod wire;

pub use checkpoint::{
    decode_state, encode_state, CheckpointError, CheckpointStore, CrashKind, CrashPayload,
    CrashPoint, CrashSchedule, LoadOutcome, PipelineState, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use daemon::{
    Daemon, DaemonHandle, DaemonReport, ServeConfig, TenantEnd, TenantRecovery, TenantSpec,
};
pub use loadgen::{replay_frames, replay_scenario, LoadGenConfig, LoadReport, Transport};
pub use metrics::{LatencyHistogram, ServeMetrics, TenantCounters};
pub use queue::{BoundedQueue, Pop};
pub use tenant::{TenantConfig, TenantFlush, TenantPipeline};
pub use wire::{MessageReader, CONTROL_DRAIN, CONTROL_TENANT, MAX_MESSAGE_LEN};

use std::fmt;

/// Everything that can go wrong while configuring or flushing the
/// daemon. Socket-level errors on the hot path never surface here — they
/// are counted in metrics and the daemon keeps serving.
#[derive(Debug)]
pub enum ServeError {
    /// Socket setup/teardown failure (bind, local_addr, connect).
    Io(std::io::Error),
    /// Ingest-layer failure surfaced at flush (merge, window setup).
    Flow(odflow_flow::FlowError),
    /// Invalid daemon or tenant configuration.
    Config(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket error: {e}"),
            ServeError::Flow(e) => write!(f, "ingest error: {e}"),
            ServeError::Config(reason) => write!(f, "configuration error: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<odflow_flow::FlowError> for ServeError {
    fn from(e: odflow_flow::FlowError) -> Self {
        ServeError::Flow(e)
    }
}
