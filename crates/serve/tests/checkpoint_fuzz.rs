//! Property tests for the checkpoint codec: decoding is total (arbitrary
//! byte soup and bit-flipped valid checkpoints never panic — they are
//! rejected with the right error class) and encoding is a bijection on
//! valid states (byte-level round-trip identity for every component).

use odflow_flow::{
    ExporterSeqState, FlowKey, Protocol, QuarantineStats, ResolutionStats, ShardState,
};
use odflow_linalg::{Centering, Matrix};
use odflow_net::IpAddr;
use odflow_serve::{decode_state, encode_state, CheckpointError, PipelineState};
use odflow_subspace::{
    DegradedReason, Detection, DetectorState, EigenflowDecomposition, ModelState, StatisticKind,
    StreamVerdict, SubspaceConfig,
};
use proptest::prelude::*;

fn arb_key() -> impl Strategy<Value = FlowKey> {
    (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), any::<u8>()).prop_map(
        |(s, d, sp, dp, pr)| FlowKey::new(IpAddr(s), IpAddr(d), sp, dp, Protocol::from_number(pr)),
    )
}

/// Cell values as raw bit patterns, so the round-trip property covers
/// NaNs, infinities, subnormals, and negative zero — the codec carries
/// `f64::to_bits` images, never arithmetic.
fn arb_f64_bits() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

fn arb_exporter() -> impl Strategy<Value = (u8, ExporterSeqState)> {
    (
        any::<u8>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u16>(),
        proptest::option::of(any::<u32>()),
        proptest::option::of((any::<u32>(), any::<u16>())),
    )
        .prop_map(|(id, frames, records, lost_flows, sampling, next_seq, last)| {
            (
                id,
                ExporterSeqState {
                    frames,
                    records,
                    lost_flows,
                    sampling_lo: sampling,
                    sampling_hi: sampling,
                    next_seq,
                    last,
                    ..ExporterSeqState::default()
                },
            )
        })
}

fn arb_verdict() -> impl Strategy<Value = StreamVerdict> {
    (
        0usize..1000,
        arb_f64_bits(),
        arb_f64_bits(),
        proptest::collection::vec((0usize..1000, any::<bool>(), arb_f64_bits()), 0..3),
        0u8..4,
        arb_f64_bits(),
    )
        .prop_map(|(bin, spe, t2, dets, deg, frac)| StreamVerdict {
            bin,
            spe,
            t2,
            detections: dets
                .into_iter()
                .map(|(dbin, is_t2, value)| Detection {
                    bin: dbin,
                    kind: if is_t2 { StatisticKind::T2 } else { StatisticKind::Spe },
                    value,
                    threshold: value,
                })
                .collect(),
            degraded: match deg {
                0 => None,
                1 => Some(DegradedReason::MaskedBin),
                2 => Some(DegradedReason::ImputedBin),
                _ => Some(DegradedReason::WidenedThreshold { imputed_fraction: frac }),
            },
        })
}

/// A full pipeline snapshot with a consistent shard shape (`bins x od`
/// cells), arbitrary float bit patterns, and an optional small detector.
fn arb_state() -> impl Strategy<Value = PipelineState> {
    (1usize..5, 1usize..5).prop_flat_map(|(bins, od)| {
        let cells = bins * od;
        (
            (
                any::<u64>(),
                any::<u64>(),
                0u64..1000,
                any::<u64>(),
                proptest::collection::vec(arb_f64_bits(), cells),
                proptest::collection::vec(arb_f64_bits(), cells),
                proptest::collection::vec(arb_f64_bits(), cells),
                proptest::collection::vec(proptest::collection::vec(arb_key(), 0..3), cells),
                proptest::collection::vec(any::<u64>(), bins),
            ),
            (
                any::<u64>(),
                proptest::collection::vec(any::<u64>(), 9),
                proptest::collection::vec(arb_exporter(), 0..4),
                proptest::collection::vec(arb_verdict(), 0..4),
                any::<bool>(),
                proptest::collection::vec(arb_f64_bits(), 16),
            ),
        )
            .prop_map(
                move |(
                    (
                        seq,
                        frames_ingested,
                        next_close,
                        watermark,
                        bytes,
                        packets,
                        flows,
                        distinct,
                        bin_records,
                    ),
                    (records_accepted, counts, exporters, live_verdicts, with_detector, det_floats),
                )| {
                    PipelineState {
                        seq,
                        frames_ingested,
                        next_close,
                        watermark_secs: watermark,
                        shard: ShardState {
                            bytes,
                            packets,
                            flows,
                            distinct,
                            bin_records,
                            records_accepted,
                            resolution: ResolutionStats {
                                flows_total: counts[0],
                                flows_resolved: counts[1],
                                bytes_total: counts[2],
                                bytes_resolved: counts[3],
                                transit_skipped: counts[4],
                            },
                            dropped_out_of_window: counts[5],
                        },
                        quarantine: QuarantineStats {
                            frames_offered: counts[6],
                            frames_accepted: counts[7],
                            records_offered: counts[8],
                            ..QuarantineStats::default()
                        },
                        exporters,
                        detector: with_detector.then(|| small_detector(&det_floats)),
                        live_verdicts,
                    }
                },
            )
    })
}

/// A structurally valid 2-flow/2-component detector built from 16
/// arbitrary float bit patterns — exercises the model/window codec
/// without needing a real fit.
fn small_detector(f: &[f64]) -> DetectorState {
    DetectorState {
        config: SubspaceConfig::default(),
        model: ModelState {
            decomp: EigenflowDecomposition {
                eigenflows: Matrix::from_vec(2, 2, f[0..4].to_vec()).unwrap(),
                loadings: Matrix::from_vec(2, 2, f[4..8].to_vec()).unwrap(),
                singular_values: f[8..10].to_vec(),
                centering: Centering { means: f[10..12].to_vec(), scales: f[12..14].to_vec() },
                n: 2,
                total_energy: f[14],
                truncated: false,
            },
            config: SubspaceConfig::default(),
            p: 2,
            spe_threshold: f[15],
            t2_threshold: f[0],
            degenerate_residual: false,
        },
        window: vec![f[1..3].to_vec(), f[3..5].to_vec()],
        window_len: 2,
        refit_every: 0,
        since_refit: 1,
        next_bin: 7,
    }
}

/// Structural (not semantic) equality of two snapshots, via the
/// canonical encoding — the codec is deterministic, so byte equality of
/// re-encodings is component-wise identity.
fn assert_same_bytes(a: &PipelineState, b: &PipelineState) {
    assert_eq!(encode_state(a), encode_state(b));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary byte soup never panics the decoder and never decodes:
    /// a random prefix can't fake an FNV-checksummed payload.
    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        prop_assert!(decode_state(&bytes).is_err());
    }

    /// Byte soup behind a valid header prefix exercises the payload
    /// decoder paths and still must reject (checksum first).
    #[test]
    fn byte_soup_with_magic_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut framed = b"ODFCKPT\0\x01\x00\x00\x00".to_vec();
        framed.extend_from_slice(&bytes);
        prop_assert!(decode_state(&framed).is_err());
    }

    /// Every single-bit flip of a valid checkpoint is rejected with a
    /// typed error — never a panic, never a silently-wrong decode.
    #[test]
    fn bit_flips_are_always_detected(
        state in arb_state(),
        flip in any::<proptest::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut bytes = encode_state(&state);
        let at = flip.index(bytes.len());
        bytes[at] ^= 1 << bit;
        let err = decode_state(&bytes).expect_err("flipped checkpoint must be rejected");
        prop_assert!(
            matches!(
                err,
                CheckpointError::Truncated { .. }
                    | CheckpointError::BadMagic
                    | CheckpointError::BadVersion(_)
                    | CheckpointError::BadChecksum { .. }
                    | CheckpointError::Corrupt(_)
            ),
            "unexpected error class: {err}"
        );
    }

    /// Truncation at any point is rejected (torn-write simulation).
    #[test]
    fn truncations_are_always_detected(
        state in arb_state(),
        cut in any::<proptest::sample::Index>(),
    ) {
        let bytes = encode_state(&state);
        let keep = cut.index(bytes.len());
        prop_assert!(decode_state(&bytes[..keep]).is_err());
    }

    /// encode → decode → encode is the identity on bytes, for every
    /// state component including non-finite float bit patterns.
    #[test]
    fn roundtrip_is_identity(state in arb_state()) {
        let bytes = encode_state(&state);
        let decoded = decode_state(&bytes).expect("canonical encoding must decode");
        assert_same_bytes(&state, &decoded);
        // And spot-check the integer components directly, not just via
        // bytes (float-bearing components can't use `==`: the strategies
        // generate NaN bit patterns on purpose).
        prop_assert_eq!(decoded.seq, state.seq);
        prop_assert_eq!(decoded.frames_ingested, state.frames_ingested);
        prop_assert_eq!(decoded.shard.bin_records, state.shard.bin_records);
        prop_assert_eq!(decoded.shard.distinct, state.shard.distinct);
        prop_assert_eq!(decoded.quarantine, state.quarantine);
        prop_assert_eq!(decoded.exporters, state.exporters);
        prop_assert_eq!(decoded.live_verdicts.len(), state.live_verdicts.len());
        prop_assert_eq!(decoded.detector.is_some(), state.detector.is_some());
    }
}
