//! Loopback end-to-end tests: the daemon's drained end state must be
//! byte-identical to the batch `run_scenario` path, and its backpressure
//! must shed deterministically with exact accounting.
//!
//! Frames travel over real sockets (TCP for the equivalence tests —
//! ordered and reliable, so the trailing drain control is a precise
//! end-of-input barrier). The batch side is computed under explicit
//! `ODFLOW_THREADS` limits of 1 and 4; the daemon's per-tenant path is
//! serial by construction, so all three must agree bit for bit.

use odflow::experiment::{run_scenario, ExperimentConfig};
use odflow_gen::Scenario;
use odflow_net::IngressResolver;
use odflow_serve::{
    replay_scenario, Daemon, DaemonReport, LoadGenConfig, ServeConfig, TenantConfig, TenantEnd,
    TenantSpec, Transport,
};
use odflow_subspace::{Diagnosis, StatisticKind};
use std::io::{Read, Write};

const NUM_BINS: usize = 48;
const SEED: u64 = 20040519;

fn abilene_spec(num_bins: usize, scenario: &Scenario) -> TenantSpec {
    let routes = scenario.plan.build_route_table(1.0).unwrap();
    let ingress = IngressResolver::synthetic(&scenario.topology);
    TenantSpec {
        config: TenantConfig::abilene("abilene", 0, num_bins),
        topology: scenario.topology.clone(),
        ingress,
        routes,
    }
}

/// Canonical byte encoding of a diagnosis: every float as exact bits,
/// every discrete field in a fixed order. Byte equality here *is* the
/// "per-bin verdicts byte-identical" acceptance criterion.
fn canonical_verdict_bytes(d: &Diagnosis) -> Vec<u8> {
    let mut out = Vec::new();
    for (t, a) in &d.analyses {
        out.extend_from_slice(format!("{t:?};").as_bytes());
        for series in [&a.state_norm_sq, &a.spe, &a.t2] {
            for &v in series {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        for det in &a.detections {
            out.extend_from_slice(&det.bin.to_le_bytes());
            out.push(match det.kind {
                StatisticKind::Spe => 0,
                StatisticKind::T2 => 1,
            });
            out.extend_from_slice(&det.value.to_bits().to_le_bytes());
            out.extend_from_slice(&det.threshold.to_bits().to_le_bytes());
        }
    }
    out.extend_from_slice(format!("{:?}{:?}", d.triples, d.events).as_bytes());
    out
}

/// Runs a daemon on a worker thread while the caller replays `scenario`
/// into it over TCP with a trailing drain; returns the daemon report.
fn serve_roundtrip(scenario: &Scenario, config: ServeConfig) -> DaemonReport {
    let daemon = Daemon::bind(config).unwrap();
    let addr = daemon.tcp_addr().unwrap();
    let mut slot: Option<DaemonReport> = None;
    let pool = scoped_pool::Pool::new(1);
    pool.scoped(|scope| {
        let slot_ref = &mut slot;
        scope.execute(move || {
            *slot_ref = Some(daemon.run());
        });
        let report = replay_scenario(scenario, addr, &LoadGenConfig::new(Transport::Tcp)).unwrap();
        assert!(report.drain_sent);
        assert_eq!(report.frames_rendered, report.frames_sent);
    });
    pool.shutdown();
    slot.unwrap()
}

#[test]
fn loopback_daemon_matches_batch_run_scenario_at_threads_1_and_4() {
    let scenario = Scenario::paper_window(SEED, NUM_BINS).unwrap();
    let report = serve_roundtrip(
        &scenario,
        ServeConfig {
            tcp_bind: Some("127.0.0.1:0".to_owned()),
            tenants: vec![abilene_spec(NUM_BINS, &scenario)],
            ..ServeConfig::default()
        },
    );
    let TenantEnd::Flushed(flush) = &report.tenants[0] else {
        panic!("tenant must flush: {:?}", report.tenants[0]);
    };
    // Clean loopback TCP: nothing shed, nothing quarantined, no gaps.
    assert!(flush.outcome.quality.quarantine.is_conserved());
    assert_eq!(flush.outcome.quality.quarantine.frames_offered, {
        flush.outcome.quality.quarantine.frames_accepted
    });
    assert_eq!(flush.outcome.quality.exporters.lost_flows_total(), 0);
    let daemon_diag = flush.diagnosis.as_ref().expect("flush diagnosis must run");
    let daemon_bytes = canonical_verdict_bytes(daemon_diag);

    for threads in [1usize, 4] {
        let batch = odflow_par::with_thread_limit(threads, || {
            run_scenario(&scenario, &ExperimentConfig::default()).unwrap()
        });
        assert_eq!(
            flush.outcome.matrices.bytes.data.as_slice(),
            batch.matrices.bytes.data.as_slice(),
            "bytes matrices, threads={threads}"
        );
        assert_eq!(
            flush.outcome.matrices.packets.data.as_slice(),
            batch.matrices.packets.data.as_slice(),
            "packets matrices, threads={threads}"
        );
        assert_eq!(
            flush.outcome.matrices.flows.data.as_slice(),
            batch.matrices.flows.data.as_slice(),
            "flows matrices, threads={threads}"
        );
        assert_eq!(
            daemon_bytes,
            canonical_verdict_bytes(&batch.diagnosis),
            "verdicts must be byte-identical to batch, threads={threads}"
        );
    }
    // The online detector scored the post-training tail along the way.
    assert_eq!(flush.live_verdicts.len(), NUM_BINS - NUM_BINS / 2);
}

#[test]
fn backpressure_sheds_beyond_capacity_and_accounts_exactly() {
    const CAPACITY: u64 = 8;
    let scenario = Scenario::paper_window(3, 6).unwrap();
    let mut spec = abilene_spec(6, &scenario);
    spec.config.queue_frames = CAPACITY as usize;
    spec.config.train_bins = 0;
    // Workers start paused (admission keeps running), so the queue fills
    // to capacity and every further frame is shed — deterministically,
    // because TCP delivers the frames in order and nobody consumes until
    // the trailing drain overrides the pause.
    let daemon = Daemon::bind(ServeConfig {
        tcp_bind: Some("127.0.0.1:0".to_owned()),
        tenants: vec![spec],
        start_paused: true,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = daemon.tcp_addr().unwrap();
    let handle = daemon.handle();
    let mut slot: Option<DaemonReport> = None;
    let mut sent = 0u64;
    let pool = scoped_pool::Pool::new(1);
    pool.scoped(|scope| {
        let slot_ref = &mut slot;
        scope.execute(move || {
            *slot_ref = Some(daemon.run());
        });
        let report = replay_scenario(&scenario, addr, &LoadGenConfig::new(Transport::Tcp)).unwrap();
        sent = report.frames_sent;
    });
    pool.shutdown();
    let report = slot.unwrap();

    let counters = handle.tenant_counters(0).unwrap();
    let get = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::SeqCst);
    let offered = get(&counters.frames_offered);
    let enqueued = get(&counters.frames_enqueued);
    let dropped = get(&counters.frames_dropped_backpressure);
    assert!(sent > CAPACITY, "the scenario must oversubscribe the queue (sent {sent})");
    assert_eq!(offered, sent, "every sent frame is offered");
    assert_eq!(enqueued, CAPACITY, "exactly the queue capacity is admitted");
    assert_eq!(dropped, offered - CAPACITY, "everything beyond capacity is shed");
    assert_eq!(offered, enqueued + dropped, "drop accounting must conserve");
    assert!(get(&counters.queue_depth_peak) <= CAPACITY, "the queue never grows past capacity");
    assert_eq!(get(&counters.queue_depth), 0, "the drain consumed the backlog");

    // The admitted prefix still flushes into a coherent (partial) window.
    let TenantEnd::Flushed(flush) = &report.tenants[0] else {
        panic!("a shed-but-nonempty window still flushes");
    };
    assert_eq!(flush.outcome.quality.quarantine.frames_offered, CAPACITY);
    let text = handle.metrics_text();
    assert!(text.contains(&format!(
        "odflow_serve_tenant_frames_dropped_backpressure_total{{tenant=\"abilene\"}} {dropped}"
    )));
}

#[test]
fn metrics_endpoint_serves_plain_text_counters() {
    let scenario = Scenario::paper_window(5, 6).unwrap();
    let daemon = Daemon::bind(ServeConfig {
        metrics_bind: Some("127.0.0.1:0".to_owned()),
        tenants: vec![abilene_spec(6, &scenario)],
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = daemon.metrics_addr().unwrap();
    let handle = daemon.handle();
    let pool = scoped_pool::Pool::new(1);
    pool.scoped(|scope| {
        scope.execute(move || {
            let _ = daemon.run();
        });
        let fetch = |path: &str| -> String {
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            stream.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
            stream.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes()).unwrap();
            let mut body = String::new();
            let _ = stream.read_to_string(&mut body);
            body
        };
        let page = fetch("/metrics");
        assert!(page.starts_with("HTTP/1.0 200 OK"));
        assert!(page.contains("text/plain"));
        assert!(page.contains("odflow_serve_tenant_frames_offered_total{tenant=\"abilene\"} 0"));
        assert!(page.contains("odflow_serve_tenant_queue_depth{tenant=\"abilene\"} 0"));
        let missing = fetch("/nope");
        assert!(missing.starts_with("HTTP/1.0 404"));
        handle.drain();
    });
    pool.shutdown();
}

/// A scraper that never finishes its request header is reaped — the
/// connection is dropped unanswered after the read deadline, the reap is
/// counted, and the endpoint then services a well-formed scrape
/// normally. Without the deadline this client would park the metrics
/// thread forever.
#[test]
fn stalled_metrics_client_is_reaped_not_serviced() {
    let scenario = Scenario::paper_window(5, 6).unwrap();
    let daemon = Daemon::bind(ServeConfig {
        metrics_bind: Some("127.0.0.1:0".to_owned()),
        tenants: vec![abilene_spec(6, &scenario)],
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = daemon.metrics_addr().unwrap();
    let handle = daemon.handle();
    let pool = scoped_pool::Pool::new(1);
    pool.scoped(|scope| {
        scope.execute(move || {
            let _ = daemon.run();
        });
        // Partial request: no terminating blank line, and the socket is
        // held open. The server must hang up on us, not wait forever.
        let mut stalled = std::net::TcpStream::connect(addr).unwrap();
        stalled.set_read_timeout(Some(std::time::Duration::from_secs(10))).unwrap();
        stalled.write_all(b"GET /metrics HTTP/1.0\r\n").unwrap();
        let mut leftovers = String::new();
        let _ = stalled.read_to_string(&mut leftovers);
        assert!(leftovers.is_empty(), "a reaped client gets no response, got: {leftovers:?}");
        drop(stalled);

        // The endpoint is free again: a complete request is serviced and
        // the reap shows up in the counters it reports.
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
        stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut page = String::new();
        let _ = stream.read_to_string(&mut page);
        assert!(page.starts_with("HTTP/1.0 200 OK"), "scrape after reap must succeed");
        assert!(page.contains("odflow_serve_metrics_clients_reaped_total 1"));
        handle.drain();
    });
    pool.shutdown();
}
