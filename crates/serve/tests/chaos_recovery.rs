//! Kill-point chaos tests: a daemon killed at *any* crash boundary and
//! recovered from its checkpoints must end byte-identical to an
//! uninterrupted run — matrices cell for cell, verdict floats bit for
//! bit — and to the batch `run_scenario` path at `ODFLOW_THREADS` 1
//! and 4. Corruption of the newest checkpoint generation must fall back
//! to the previous one, and a persistently panicking tenant must be
//! quarantined without disturbing its neighbors.
//!
//! The harness is fully deterministic: crash points are injected by
//! [`CrashSchedule`], frames are pre-rendered once and replayed over
//! real TCP, and the recovery replays the exact unconsumed suffix
//! `frames[cursor..]` reported by [`TenantRecovery::frames_ingested`].

use odflow::experiment::{run_scenario, ExperimentConfig};
use odflow_gen::Scenario;
use odflow_serve::wire;
use odflow_serve::{
    replay_frames, CheckpointStore, CrashPoint, CrashSchedule, Daemon, DaemonReport, LoadGenConfig,
    ServeConfig, TenantConfig, TenantEnd, TenantFlush, TenantRecovery, TenantSpec, Transport,
    CONTROL_TENANT,
};
use odflow_subspace::{Diagnosis, StatisticKind};
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

const NUM_BINS: usize = 36;
const SEED: u64 = 20040519;
/// The global bin index every crash fires at. Late enough that a stack
/// of prior checkpoint generations exists (one per closed bin), early
/// enough that a meaningful tail remains to replay after recovery.
const CRASH_BIN: usize = 27;

/// The scenario, its pre-rendered frame stream, and one uninterrupted
/// baseline daemon run — shared across every test in the suite. The
/// baseline is the single most expensive artifact here (a full 36-bin
/// ingest-and-detect run), and every test compares against the *same*
/// bytes, so computing it once is free determinism-wise and pays for
/// itself several times over in wall clock.
fn shared() -> &'static (Scenario, Vec<Vec<u8>>, DaemonReport) {
    static SHARED: OnceLock<(Scenario, Vec<Vec<u8>>, DaemonReport)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let scenario = Scenario::paper_window(SEED, NUM_BINS).unwrap();
        let frames = render_frames(&scenario);
        let base = baseline_report(&frames, &scenario);
        (scenario, frames, base)
    })
}

fn abilene_spec(scenario: &Scenario, crash: Option<Arc<CrashSchedule>>) -> TenantSpec {
    let routes = scenario.plan.build_route_table(1.0).unwrap();
    let ingress = odflow_net::IngressResolver::synthetic(&scenario.topology);
    let mut config = TenantConfig::abilene("abilene", 0, NUM_BINS);
    config.crash = crash;
    // The unpaced loopback replay outruns the worker (fsync'd checkpoint
    // per bin close), so the queue must hold the whole rendered stream
    // (~5.6k frames at 36 bins): shed frames would make the runs
    // timing-dependent, and byte identity is exactly what this suite
    // asserts.
    config.queue_frames = 8192;
    TenantSpec { config, topology: scenario.topology.clone(), ingress, routes }
}

/// A fresh checkpoint directory under the cargo tmp root, unique per
/// test so parallel tests never share generations.
fn ckpt_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("chaos_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every export frame of the scenario, pre-rendered in the exact order
/// the load generator would send them (bins ascending, PoP order within
/// a bin, sequence continuity across bins).
fn render_frames(scenario: &Scenario) -> Vec<Vec<u8>> {
    let generator = scenario.generator();
    let mut seqs = vec![0u32; scenario.topology.num_pops()];
    (0..scenario.config.num_bins).flat_map(|b| generator.frames_for_bin(b, &mut seqs)).collect()
}

/// Binds `config`, runs the daemon on a worker thread, and replays
/// `frames` into it over TCP with a trailing drain.
fn run_daemon(config: ServeConfig, frames: &[Vec<u8>]) -> DaemonReport {
    let daemon = Daemon::bind(config).unwrap();
    drive_daemon(daemon, frames)
}

fn drive_daemon(daemon: Daemon, frames: &[Vec<u8>]) -> DaemonReport {
    let addr = daemon.tcp_addr().unwrap();
    let mut slot: Option<DaemonReport> = None;
    let pool = scoped_pool::Pool::new(1);
    pool.scoped(|scope| {
        let slot_ref = &mut slot;
        scope.execute(move || {
            *slot_ref = Some(daemon.run());
        });
        let report = replay_frames(frames, addr, &LoadGenConfig::new(Transport::Tcp)).unwrap();
        assert_eq!(report.frames_sent, frames.len() as u64);
        assert!(report.drain_sent);
    });
    pool.shutdown();
    slot.unwrap()
}

/// Canonical byte encoding of a diagnosis (same scheme as the loopback
/// suite): floats as exact bits, discrete fields in fixed order.
fn canonical_verdict_bytes(d: &Diagnosis) -> Vec<u8> {
    let mut out = Vec::new();
    for (t, a) in &d.analyses {
        out.extend_from_slice(format!("{t:?};").as_bytes());
        for series in [&a.state_norm_sq, &a.spe, &a.t2] {
            for &v in series {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        for det in &a.detections {
            out.extend_from_slice(&det.bin.to_le_bytes());
            out.push(match det.kind {
                StatisticKind::Spe => 0,
                StatisticKind::T2 => 1,
            });
            out.extend_from_slice(&det.value.to_bits().to_le_bytes());
            out.extend_from_slice(&det.threshold.to_bits().to_le_bytes());
        }
    }
    out.extend_from_slice(format!("{:?}{:?}", d.triples, d.events).as_bytes());
    out
}

fn expect_flushed(end: &TenantEnd) -> &TenantFlush {
    let TenantEnd::Flushed(flush) = end else {
        panic!("tenant must flush, got {end:?}");
    };
    flush
}

/// The whole acceptance criterion in one place: matrices byte-identical,
/// quality accounting identical, diagnosis byte-identical, and the live
/// verdict stream float-bit identical.
fn assert_flush_equal(label: &str, a: &TenantFlush, b: &TenantFlush) {
    assert_eq!(
        a.outcome.matrices.bytes.data.as_slice(),
        b.outcome.matrices.bytes.data.as_slice(),
        "{label}: bytes matrices"
    );
    assert_eq!(
        a.outcome.matrices.packets.data.as_slice(),
        b.outcome.matrices.packets.data.as_slice(),
        "{label}: packets matrices"
    );
    assert_eq!(
        a.outcome.matrices.flows.data.as_slice(),
        b.outcome.matrices.flows.data.as_slice(),
        "{label}: flows matrices"
    );
    assert_eq!(a.outcome.quality.bin_records, b.outcome.quality.bin_records, "{label}: records");
    assert_eq!(a.outcome.quality.quarantine, b.outcome.quality.quarantine, "{label}: quarantine");
    let (da, db) = (a.diagnosis.as_ref().unwrap(), b.diagnosis.as_ref().unwrap());
    assert_eq!(
        canonical_verdict_bytes(da),
        canonical_verdict_bytes(db),
        "{label}: batch diagnosis"
    );
    assert_eq!(a.live_verdicts.len(), b.live_verdicts.len(), "{label}: live verdict count");
    for (va, vb) in a.live_verdicts.iter().zip(&b.live_verdicts) {
        assert_eq!(va.bin, vb.bin, "{label}: verdict bin");
        assert_eq!(va.spe.to_bits(), vb.spe.to_bits(), "{label}: SPE bits, bin {}", va.bin);
        assert_eq!(va.t2.to_bits(), vb.t2.to_bits(), "{label}: T2 bits, bin {}", va.bin);
        assert_eq!(va.detections.len(), vb.detections.len(), "{label}: detections");
    }
}

/// The recovered flush must also match the *batch* `run_scenario` path
/// bit for bit, at explicit thread limits 1 and 4.
fn assert_matches_batch(label: &str, scenario: &Scenario, flush: &TenantFlush) {
    let flush_bytes = canonical_verdict_bytes(flush.diagnosis.as_ref().unwrap());
    for threads in [1usize, 4] {
        let batch = odflow_par::with_thread_limit(threads, || {
            run_scenario(scenario, &ExperimentConfig::default()).unwrap()
        });
        assert_eq!(
            flush.outcome.matrices.bytes.data.as_slice(),
            batch.matrices.bytes.data.as_slice(),
            "{label}: bytes matrices vs batch, threads={threads}"
        );
        assert_eq!(
            flush.outcome.matrices.packets.data.as_slice(),
            batch.matrices.packets.data.as_slice(),
            "{label}: packets matrices vs batch, threads={threads}"
        );
        assert_eq!(
            flush.outcome.matrices.flows.data.as_slice(),
            batch.matrices.flows.data.as_slice(),
            "{label}: flows matrices vs batch, threads={threads}"
        );
        assert_eq!(
            flush_bytes,
            canonical_verdict_bytes(&batch.diagnosis),
            "{label}: diagnosis vs batch, threads={threads}"
        );
    }
}

/// Kills a daemon at `point`, recovers from the checkpoint directory,
/// replays the unconsumed suffix, and returns the recovery report plus
/// the recovered flush-end state.
fn kill_and_recover(
    tag: &str,
    point: CrashPoint,
    frames: &[Vec<u8>],
    scenario: &Scenario,
) -> (TenantRecovery, DaemonReport) {
    let dir = ckpt_dir(tag);
    let kill_report = run_daemon(
        ServeConfig {
            tcp_bind: Some("127.0.0.1:0".to_owned()),
            tenants: vec![abilene_spec(scenario, Some(CrashSchedule::kill_at(point)))],
            checkpoint_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
        frames,
    );
    let TenantEnd::Killed { name, point: died_at } = &kill_report.tenants[0] else {
        panic!("worker must die at the injected point, got {:?}", kill_report.tenants[0]);
    };
    assert_eq!(name, "abilene");
    assert_eq!(*died_at, point);

    // Recovery: a fresh daemon resumes from the newest valid generation
    // (no crash schedule this time) and replays the uncovered tail.
    let (daemon, mut recoveries) = Daemon::recover(
        ServeConfig {
            tcp_bind: Some("127.0.0.1:0".to_owned()),
            tenants: vec![abilene_spec(scenario, None)],
            ..ServeConfig::default()
        },
        &dir,
    )
    .unwrap();
    let recovery = recoveries.remove(0);
    let cursor = usize::try_from(recovery.frames_ingested).unwrap();
    assert!(cursor <= frames.len(), "cursor {cursor} beyond the stream");
    let report = drive_daemon(daemon, &frames[cursor..]);
    (recovery, report)
}

/// One uninterrupted daemon run to compare every recovery against.
fn baseline_report(frames: &[Vec<u8>], scenario: &Scenario) -> DaemonReport {
    let report = run_daemon(
        ServeConfig {
            tcp_bind: Some("127.0.0.1:0".to_owned()),
            tenants: vec![abilene_spec(scenario, None)],
            ..ServeConfig::default()
        },
        frames,
    );
    assert!(expect_flushed(&report.tenants[0]).outcome.quality.quarantine.is_conserved());
    report
}

/// Kill/recover at every crash boundary in the pipeline; each recovery
/// must be byte-identical to the uninterrupted daemon *and* to batch
/// `run_scenario` at threads 1 and 4.
#[test]
fn kill_at_every_crash_point_recovers_byte_identical() {
    let (scenario, frames, base) = shared();
    let baseline = expect_flushed(&base.tenants[0]);
    // Pin the baseline itself to the batch path at threads 1 and 4 once;
    // each recovery below is asserted byte-equal to the baseline, and
    // byte equality is transitive, so every recovered run is thereby
    // byte-equal to batch at both thread counts without re-running the
    // batch pipeline per crash point.
    assert_matches_batch("baseline", scenario, baseline);
    let points = [
        ("bin_close", CrashPoint::BeforeBinClose(CRASH_BIN)),
        ("before_ckpt", CrashPoint::BeforeCheckpoint(CRASH_BIN)),
        ("torn_ckpt", CrashPoint::TornCheckpoint(CRASH_BIN)),
        ("after_ckpt", CrashPoint::AfterCheckpoint(CRASH_BIN)),
        ("flush", CrashPoint::BeforeFlush),
    ];
    for (tag, point) in points {
        let (recovery, report) = kill_and_recover(tag, point, frames, scenario);
        let seq = recovery.resumed_seq.unwrap_or_else(|| panic!("{tag}: must resume a generation"));
        assert!(recovery.frames_ingested > 0, "{tag}: cursor must advance");
        if point == CrashPoint::TornCheckpoint(CRASH_BIN) {
            // The torn write landed on disk; recovery must have rejected
            // it and fallen back to the previous generation.
            assert!(recovery.slots_rejected >= 1, "{tag}: torn slot must be rejected");
            assert_eq!(seq, CRASH_BIN as u64 - 1, "{tag}: previous generation");
        } else {
            assert_eq!(recovery.slots_rejected, 0, "{tag}: no slot may be rejected");
        }
        let flush = expect_flushed(&report.tenants[0]);
        assert_flush_equal(tag, baseline, flush);
    }
}

/// Bit-flip the newest generation after a kill: recovery must classify
/// it as corrupt, fall back to the previous generation, and *still* end
/// byte-identical.
#[test]
fn corrupted_newest_generation_recovers_from_previous_one() {
    let (scenario, frames, base) = shared();
    let baseline = expect_flushed(&base.tenants[0]);
    let dir = ckpt_dir("bitflip");
    let kill_report = run_daemon(
        ServeConfig {
            tcp_bind: Some("127.0.0.1:0".to_owned()),
            tenants: vec![abilene_spec(
                scenario,
                Some(CrashSchedule::kill_at(CrashPoint::AfterCheckpoint(CRASH_BIN))),
            )],
            checkpoint_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
        frames,
    );
    assert!(
        matches!(kill_report.tenants[0], TenantEnd::Killed { .. }),
        "expected Killed, got {:?}",
        kill_report.tenants[0]
    );

    // Find the newest generation on disk and flip one payload byte.
    let store = CheckpointStore::new(&dir, "abilene");
    let newest = store.load_newest().state.expect("a valid newest generation exists");
    assert_eq!(newest.seq, CRASH_BIN as u64);
    let victim = &store.slot_paths()[(newest.seq % 2) as usize];
    let mut bytes = std::fs::read(victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(victim, &bytes).unwrap();

    let (daemon, mut recoveries) = Daemon::recover(
        ServeConfig {
            tcp_bind: Some("127.0.0.1:0".to_owned()),
            tenants: vec![abilene_spec(scenario, None)],
            ..ServeConfig::default()
        },
        &dir,
    )
    .unwrap();
    let recovery = recoveries.remove(0);
    assert_eq!(recovery.slots_rejected, 1, "the flipped slot must be rejected");
    assert_eq!(
        recovery.resumed_seq,
        Some(CRASH_BIN as u64 - 1),
        "recovery must fall back one generation"
    );
    let cursor = usize::try_from(recovery.frames_ingested).unwrap();
    let report = drive_daemon(daemon, &frames[cursor..]);
    let flush = expect_flushed(&report.tenants[0]);
    assert_flush_equal("bitflip", baseline, flush);
}

/// A *panic* (not a kill) at the post-checkpoint boundary: the
/// supervisor restarts the worker in place from the just-written
/// generation against the surviving queue — no frame lost, no frame
/// double-counted — and the run still ends byte-identical.
#[test]
fn panicking_worker_restarts_from_checkpoint_and_stays_byte_identical() {
    let (scenario, frames, base) = shared();
    let baseline = expect_flushed(&base.tenants[0]);
    let dir = ckpt_dir("panic_restart");
    let daemon = Daemon::bind(ServeConfig {
        tcp_bind: Some("127.0.0.1:0".to_owned()),
        tenants: vec![abilene_spec(
            scenario,
            Some(CrashSchedule::panic_at(CrashPoint::AfterCheckpoint(CRASH_BIN))),
        )],
        checkpoint_dir: Some(dir),
        ..ServeConfig::default()
    })
    .unwrap();
    let handle = daemon.handle();
    let report = drive_daemon(daemon, frames);
    let flush = expect_flushed(&report.tenants[0]);
    assert_flush_equal("panic_restart", baseline, flush);

    let counters = handle.tenant_counters(0).unwrap();
    let get = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::SeqCst);
    assert_eq!(get(&counters.restarts), 1, "exactly one supervised restart");
    assert_eq!(get(&counters.quarantined), 0, "a restarted tenant is not quarantined");
    assert!(get(&counters.checkpoints) > 0, "checkpoints were written");
}

/// A tenant that panics every time it reaches the same bin close makes
/// no progress across restarts and must be quarantined — while a second
/// tenant sharing the daemon flushes byte-identical, completely
/// undisturbed.
#[test]
fn persistently_panicking_tenant_quarantines_without_disturbing_neighbors() {
    let (scenario, frames, base) = shared();
    let baseline = expect_flushed(&base.tenants[0]);
    let dir = ckpt_dir("quarantine");
    let mut poison = abilene_spec(
        scenario,
        Some(CrashSchedule::panic_always_at(CrashPoint::BeforeBinClose(CRASH_BIN))),
    );
    poison.config.name = "poison".to_owned();
    let healthy = {
        let mut s = abilene_spec(scenario, None);
        s.config.name = "healthy".to_owned();
        s
    };
    let daemon = Daemon::bind(ServeConfig {
        tcp_bind: Some("127.0.0.1:0".to_owned()),
        tenants: vec![poison, healthy],
        checkpoint_dir: Some(dir),
        max_restarts: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = daemon.tcp_addr().unwrap();
    let handle = daemon.handle();
    let mut slot: Option<DaemonReport> = None;
    let pool = scoped_pool::Pool::new(1);
    pool.scoped(|scope| {
        let slot_ref = &mut slot;
        scope.execute(move || {
            *slot_ref = Some(daemon.run());
        });
        // Interleave the same frame stream to both tenants on one TCP
        // connection, then drain.
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        for frame in frames {
            stream.write_all(&wire::encode_message(0, frame)).unwrap();
            stream.write_all(&wire::encode_message(1, frame)).unwrap();
        }
        stream.write_all(&wire::encode_message(CONTROL_TENANT, wire::CONTROL_DRAIN)).unwrap();
        stream.flush().unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
    });
    pool.shutdown();
    let report = slot.unwrap();

    // Tenant 0 was quarantined after max_restarts+1 consecutive panics.
    let TenantEnd::Failed { name, reason } = &report.tenants[0] else {
        panic!("poison tenant must fail, got {:?}", report.tenants[0]);
    };
    assert_eq!(name, "poison");
    assert!(reason.contains("quarantined"), "reason must name the quarantine: {reason}");
    let counters = handle.tenant_counters(0).unwrap();
    let get = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::SeqCst);
    assert_eq!(get(&counters.restarts), 3, "max_restarts=2 allows exactly 3 panics");
    assert_eq!(get(&counters.quarantined), 1, "the quarantine gauge is raised");
    assert!(
        handle.metrics_text().contains("odflow_serve_tenant_quarantined{tenant=\"poison\"} 1"),
        "quarantine must be visible on /metrics"
    );

    // Tenant 1 never noticed: byte-identical to the uninterrupted run.
    let flush = expect_flushed(&report.tenants[1]);
    assert_eq!(flush.name, "healthy");
    assert_flush_equal("healthy neighbor", baseline, flush);
}
