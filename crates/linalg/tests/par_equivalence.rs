//! Parallel/serial equivalence of the blocked numerics kernels.
//!
//! The determinism contract of `odflow_par` says chunk decompositions and
//! reduction orders never depend on the thread count, so every kernel must
//! return the *same* result under a one-thread pool (the serial fallback),
//! a typical pool, and an oversubscribed pool (more threads than rows).
//! These tests pin that contract at the 1e-10 tolerance the detection
//! statistics need — and, where the kernel promises it, exactly.

use odflow_linalg::{center_columns, covariance, eigen_symmetric, scatter, Matrix};
use odflow_par::with_thread_limit;
use proptest::prelude::*;

/// Strategy: a matrix with bounded entries, tall enough to split into
/// several parallel row blocks at the kernels' fixed grains.
fn matrix(max_n: usize, max_p: usize) -> impl Strategy<Value = Matrix> {
    (2usize..=max_n, 2usize..=max_p).prop_flat_map(|(n, p)| {
        proptest::collection::vec(-100.0f64..100.0, n * p)
            .prop_map(move |data| Matrix::from_vec(n, p, data).unwrap())
    })
}

/// Runs `f` under a 1-thread, 4-thread, and oversubscribed pool and asserts
/// all three results agree element-wise within `tol` (they are in fact
/// bit-identical; the tolerance is the documented contract).
fn assert_pool_invariant(m: &Matrix, tol: f64, f: impl Fn(&Matrix) -> Matrix) {
    let serial = with_thread_limit(1, || f(m));
    let typical = with_thread_limit(4, || f(m));
    let oversub = with_thread_limit(m.nrows() + 7, || f(m));
    assert!(serial.approx_eq(&typical, tol), "serial vs 4 threads diverged");
    assert!(serial.approx_eq(&oversub, tol), "serial vs oversubscribed diverged");
    // The implementation promises bit-identity, which subsumes the 1e-10
    // contract; assert it so regressions surface loudly.
    assert_eq!(serial.as_slice(), typical.as_slice());
    assert_eq!(serial.as_slice(), oversub.as_slice());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gram_matches_across_thread_counts(m in matrix(40, 12)) {
        assert_pool_invariant(&m, 1e-10, |x| scatter(x).unwrap());
    }

    #[test]
    fn matmul_matches_across_thread_counts(m in matrix(24, 10)) {
        let rhs = m.transpose();
        assert_pool_invariant(&m, 1e-10, |x| x.matmul(&rhs).unwrap());
    }

    #[test]
    fn covariance_matches_across_thread_counts(m in matrix(40, 10)) {
        assert_pool_invariant(&m, 1e-10, |x| covariance(x).unwrap());
    }

    #[test]
    fn centering_matches_across_thread_counts(m in matrix(40, 10)) {
        assert_pool_invariant(&m, 1e-10, |x| center_columns(x).unwrap().0);
    }

    #[test]
    fn gram_matches_transpose_matmul(m in matrix(30, 8)) {
        // The blocked syrk kernel must agree with the generic matmul route.
        let s = scatter(&m).unwrap();
        let naive = m.transpose().matmul(&m).unwrap();
        let scale = 1.0 + naive.max_abs();
        prop_assert!(s.approx_eq(&naive, 1e-10 * scale));
    }
}

/// Row counts straddling the fixed 128-row gram block boundary, so the
/// blocked reduction exercises 1, 2, and many partial blocks.
#[test]
fn gram_block_boundaries_are_thread_invariant() {
    for &n in &[1usize, 127, 128, 129, 257, 513] {
        let x = Matrix::from_fn(n, 7, |i, j| ((i * 13 + j * 29) % 83) as f64 / 83.0 - 0.4);
        let serial = with_thread_limit(1, || scatter(&x).unwrap());
        let wide = with_thread_limit(16, || scatter(&x).unwrap());
        assert_eq!(serial.as_slice(), wide.as_slice(), "n={n}");
    }
}

/// A week-sized workload (the paper's 2016 x 121) through the full
/// centered-covariance + eigendecomposition path, thread-invariant.
#[test]
fn week_scale_covariance_eigen_thread_invariant() {
    let x = Matrix::from_fn(504, 121, |i, j| {
        let t = i as f64 / 288.0 * std::f64::consts::TAU;
        (20.0 + j as f64) * (2.0 + (t + 0.8 * (j % 4) as f64).sin())
            + ((i * 31 + j * 17) % 101) as f64 / 101.0
    });
    let serial = with_thread_limit(1, || {
        let c = covariance(&x).unwrap();
        eigen_symmetric(&c).unwrap().eigenvalues
    });
    let wide = with_thread_limit(8, || {
        let c = covariance(&x).unwrap();
        eigen_symmetric(&c).unwrap().eigenvalues
    });
    assert_eq!(serial, wide);
}
