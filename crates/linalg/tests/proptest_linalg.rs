//! Property-based tests for the linear-algebra substrate.
//!
//! These pin down the algebraic invariants the subspace method relies on:
//! orthonormality of eigenvectors, exactness of `x = x_hat + x_tilde`-style
//! decompositions, and Pythagoras over orthogonal projections.

use odflow_linalg::{
    center_columns, column_means, covariance, eigen_symmetric, thin_svd, vecops, Matrix,
};
use proptest::prelude::*;

/// Strategy: a small matrix with well-conditioned, bounded entries.
fn small_matrix(max_n: usize, max_p: usize) -> impl Strategy<Value = Matrix> {
    (2usize..=max_n, 1usize..=max_p).prop_flat_map(|(n, p)| {
        proptest::collection::vec(-100.0f64..100.0, n * p)
            .prop_map(move |data| Matrix::from_vec(n, p, data).unwrap())
    })
}

/// Strategy: a symmetric matrix built as (A + A^T)/2.
fn symmetric_matrix(max_n: usize) -> impl Strategy<Value = Matrix> {
    (1usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(-50.0f64..50.0, n * n).prop_map(move |data| {
            let a = Matrix::from_vec(n, n, data).unwrap();
            Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in small_matrix(8, 8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associative_with_vector(m in small_matrix(6, 6)) {
        // (M^T M) v == M^T (M v)
        let v: Vec<f64> = (0..m.ncols()).map(|i| (i as f64) - 1.5).collect();
        let mtm = m.transpose().matmul(&m).unwrap();
        let lhs = mtm.matvec(&v).unwrap();
        let mv = m.matvec(&v).unwrap();
        let rhs = m.transpose().matvec(&mv).unwrap();
        for (a, b) in lhs.iter().zip(&rhs) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn centering_zeroes_column_means(m in small_matrix(10, 6)) {
        let (c, _) = center_columns(&m).unwrap();
        for mean in column_means(&c) {
            prop_assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn eigen_reconstructs_symmetric(s in symmetric_matrix(7)) {
        let e = eigen_symmetric(&s).unwrap();
        let v = &e.eigenvectors;
        let recon = v
            .matmul(&Matrix::from_diag(&e.eigenvalues)).unwrap()
            .matmul(&v.transpose()).unwrap();
        let scale = 1.0 + s.max_abs();
        prop_assert!(recon.approx_eq(&s, 1e-7 * scale),
            "reconstruction error {}", recon.sub(&s).unwrap().max_abs());
    }

    #[test]
    fn eigenvectors_orthonormal(s in symmetric_matrix(7)) {
        let e = eigen_symmetric(&s).unwrap();
        let n = s.nrows();
        let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors).unwrap();
        prop_assert!(vtv.approx_eq(&Matrix::identity(n), 1e-8));
    }

    #[test]
    fn eigenvalues_sorted_descending(s in symmetric_matrix(8)) {
        let e = eigen_symmetric(&s).unwrap();
        for w in e.eigenvalues.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-10);
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum(s in symmetric_matrix(8)) {
        let e = eigen_symmetric(&s).unwrap();
        let tr = s.trace().unwrap();
        let sum: f64 = e.eigenvalues.iter().sum();
        prop_assert!((tr - sum).abs() < 1e-7 * (1.0 + tr.abs()));
    }

    #[test]
    fn svd_reconstruction(m in small_matrix(10, 5)) {
        let svd = thin_svd(&m, 0.0).unwrap();
        let r = svd.reconstruct().unwrap();
        let scale = 1.0 + m.max_abs();
        prop_assert!(r.approx_eq(&m, 1e-6 * scale),
            "svd reconstruction error {}", r.sub(&m).unwrap().max_abs());
    }

    #[test]
    fn svd_projection_pythagoras(m in small_matrix(10, 5)) {
        // For any k: ||X||_F^2 == ||X_k||_F^2 + ||X - X_k||_F^2
        // (orthogonal projection).
        let svd = thin_svd(&m, 0.0).unwrap();
        let k = svd.rank() / 2;
        if k == 0 { return Ok(()); }
        let xk = svd.reconstruct_rank(k).unwrap();
        let resid = m.sub(&xk).unwrap();
        let total = m.frobenius_norm().powi(2);
        let parts = xk.frobenius_norm().powi(2) + resid.frobenius_norm().powi(2);
        prop_assert!((total - parts).abs() < 1e-5 * (1.0 + total));
    }

    #[test]
    fn covariance_symmetric_psd_diagonal(m in small_matrix(12, 5)) {
        let c = covariance(&m).unwrap();
        prop_assert!(c.is_symmetric(1e-9));
        for j in 0..c.ncols() {
            prop_assert!(c[(j, j)] >= -1e-12);
        }
        // PSD check via eigenvalues.
        let e = eigen_symmetric(&c).unwrap();
        let scale = 1.0 + c.max_abs();
        for l in e.eigenvalues {
            prop_assert!(l > -1e-8 * scale, "covariance eigenvalue {l} negative");
        }
    }

    #[test]
    fn norm_sq_additive_under_orthogonal_split(v in proptest::collection::vec(-100.0f64..100.0, 2..40)) {
        // Splitting v into (v - proj) and proj on a random axis e_0:
        let mut proj = vec![0.0; v.len()];
        proj[0] = v[0];
        let resid = vecops::sub(&v, &proj);
        let total = vecops::norm_sq(&v);
        let parts = vecops::norm_sq(&proj) + vecops::norm_sq(&resid);
        prop_assert!((total - parts).abs() < 1e-9 * (1.0 + total));
    }
}
