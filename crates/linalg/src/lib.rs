//! # odflow-linalg — dense numerics substrate for the subspace method
//!
//! Self-contained dense linear algebra used by the `odflow` workspace:
//! a row-major [`Matrix`], symmetric eigendecomposition by the cyclic Jacobi
//! method ([`eigen_symmetric`]) or by blocked Householder tridiagonalization
//! with implicit-shift QR ([`eigen_symmetric_tridiagonal`]), thin SVD via
//! the Gram eigenproblem ([`thin_svd`]), column centering/standardization,
//! and covariance / correlation matrices.
//!
//! The paper this workspace reproduces (Lakhina, Crovella & Diot,
//! *Characterization of Network-Wide Anomalies in Traffic Flows*, IMC 2004)
//! performs PCA over an `n x p` multivariate timeseries of origin-destination
//! flow traffic with `p = 121`. Everything here is sized and tested for that
//! regime — tall-skinny data, small dense symmetric eigenproblems — and is
//! implemented from scratch so the workspace carries no external numerics
//! dependency (Rust PCA tooling being thin is exactly why).
//!
//! ## Quick example
//!
//! ```
//! use odflow_linalg::{Matrix, thin_svd};
//!
//! // 8 observations of 3 correlated variables.
//! let x = Matrix::from_fn(8, 3, |i, j| ((i + 1) * (j + 1)) as f64);
//! let svd = thin_svd(&x, 1e-12).unwrap();
//! assert_eq!(svd.rank(), 1); // perfectly correlated -> rank 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod center;
mod cov;
mod eigen;
mod error;
mod householder;
mod matrix;
mod randomized;
mod solve;
mod svd;
mod tridiag;
pub mod vecops;

pub use backend::{
    truncated_svd, DenseJacobiBackend, DenseTridiagonalBackend, EigenBackend, EigenMethod,
    RandomizedTruncatedBackend, AUTO_DENSE_MAX_DIM, AUTO_TRIDIAG_MIN_DIM,
};
pub use center::{center_columns, column_means, standardize_columns, Centering};
pub use cov::{correlation, covariance, scatter};
pub use eigen::{
    eigen_symmetric, eigen_symmetric_auto, eigen_symmetric_tridiagonal, eigen_symmetric_with,
    EigenDecomposition, JacobiOptions, JacobiOrdering, JACOBI_PARALLEL_MIN_DIM,
};
pub use error::{LinalgError, Result};
pub use matrix::Matrix;
pub use randomized::{randomized_thin_svd, RandomizedSvdOptions, DEFAULT_SKETCH_SEED};
pub use solve::solve;
pub use svd::{thin_svd, thin_svd_with, Svd};
