//! Pluggable eigen-backends for model fitting.
//!
//! Every consumer of the subspace method ultimately needs one thing from
//! this crate: the top singular triplets of an `n x p` data matrix. How
//! they are computed is a *backend* decision — the paper-scale dense route
//! (full Gram matrix + cyclic Jacobi) is exact but `O(p³)` and `O(p²)`
//! memory, while the randomized range finder ([`randomized_thin_svd`])
//! touches nothing larger than a `p x (k + oversample)` panel and runs the
//! detector at 90 000 OD pairs.
//!
//! [`EigenMethod`] is the configuration-level selector carried by
//! `SubspaceConfig` and threaded through the whole fitting stack;
//! [`EigenBackend`] is the trait seam future solvers (Lanczos, GPU,
//! incremental refit) plug into without touching any call site above this
//! crate.

use crate::error::Result;
use crate::matrix::Matrix;
use crate::randomized::{randomized_thin_svd, RandomizedSvdOptions, DEFAULT_SKETCH_SEED};
use crate::svd::{thin_svd_with, Svd};

/// Largest OD-space dimension `p` at which [`EigenMethod::Auto`] stays on
/// a dense exact path. Below this the full `p x p` Gram eigenproblem is
/// affordable (the tridiagonal solver keeps it so through mid-size
/// meshes); above it `Auto` switches to the randomized truncated solver,
/// whose cost grows only linearly in `p`.
///
/// Raised from 256 to 512 when the blocked tridiagonal backend landed:
/// Jacobi at `p = 512` costs seconds, the tridiagonal pipeline hundreds of
/// milliseconds, so meshes that used to fall off the exact path now keep
/// their full spectrum.
pub const AUTO_DENSE_MAX_DIM: usize = 512;

/// Smallest dimension at which the dense exact path switches from cyclic
/// Jacobi to the blocked Householder + implicit-shift QR solver (under
/// [`EigenMethod::Auto`]). Below this Jacobi's simplicity wins — and,
/// deliberately, the paper's `p = 121` Abilene mesh stays on the
/// historical Jacobi arithmetic, keeping its detection output
/// byte-identical across releases.
pub const AUTO_TRIDIAG_MIN_DIM: usize = 128;

/// How to compute the eigen/singular decomposition during model fitting.
///
/// # Examples
///
/// ```
/// use odflow_linalg::EigenMethod;
///
/// // Auto picks the dense exact Jacobi path at the paper's scale...
/// assert_eq!(EigenMethod::Auto.resolve(121), EigenMethod::DenseJacobi);
/// // ...the dense tridiagonal path for mid-size meshes...
/// assert_eq!(EigenMethod::Auto.resolve(256), EigenMethod::DenseTridiagonal);
/// // ...and the randomized truncated path at large-mesh scale.
/// assert!(matches!(
///     EigenMethod::Auto.resolve(90_000),
///     EigenMethod::RandomizedTruncated { .. }
/// ));
/// // Explicit choices resolve to themselves.
/// assert_eq!(EigenMethod::DenseJacobi.resolve(90_000), EigenMethod::DenseJacobi);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EigenMethod {
    /// Full `p x p` Gram matrix + cyclic Jacobi eigendecomposition: exact,
    /// the historical default, and the reference every other backend is
    /// tested against. Memory and time grow as `O(p²)` / `O(p³)` — with a
    /// large sweep-count constant that makes it the slow choice past
    /// [`AUTO_TRIDIAG_MIN_DIM`].
    DenseJacobi,
    /// Full `p x p` Gram matrix + blocked Householder tridiagonalization
    /// and implicit Wilkinson-shift QR
    /// ([`crate::eigen_symmetric_tridiagonal`]): the same exact full
    /// spectrum as [`EigenMethod::DenseJacobi`] at a fraction of the
    /// arithmetic (~4x at `p = 256`), bit-identical for every thread
    /// count. Eigenvector signs and low-order bits differ from Jacobi —
    /// the methods take different arithmetic paths to the same
    /// eigensystem.
    ///
    /// ```
    /// use odflow_linalg::{truncated_svd, EigenMethod, Matrix};
    ///
    /// let x = Matrix::from_fn(40, 24, |i, j| ((i * 3 + j * 7) % 11) as f64);
    /// let tri = truncated_svd(&x, 4, EigenMethod::DenseTridiagonal).unwrap();
    /// let jac = truncated_svd(&x, 4, EigenMethod::DenseJacobi).unwrap();
    /// for (a, b) in tri.sigma.iter().zip(&jac.sigma).take(4) {
    ///     assert!((a - b).abs() < 1e-8 * (1.0 + a));
    /// }
    /// ```
    DenseTridiagonal,
    /// Halko-style randomized range finder: Gaussian sketch, a few power
    /// iterations, and a dense eigenproblem on the tiny
    /// `(k + oversample)²` projected matrix. Deterministic for a fixed
    /// `seed` (and bit-identical for every thread count); never
    /// materializes anything `p x p`.
    RandomizedTruncated {
        /// Extra sketch columns beyond the requested rank (5-10 typical).
        oversample: usize,
        /// Power iterations tightening the range (1-2 typical).
        power_iters: usize,
        /// Seed of the ChaCha8 Gaussian sketch stream.
        seed: u64,
    },
    /// Pick by problem size: [`EigenMethod::DenseJacobi`] below
    /// [`AUTO_TRIDIAG_MIN_DIM`], [`EigenMethod::DenseTridiagonal`] up to
    /// [`AUTO_DENSE_MAX_DIM`], otherwise
    /// [`EigenMethod::RandomizedTruncated`] with default parameters
    /// (`oversample = 8`, `power_iters = 2`, a fixed seed). This is the
    /// default carried by `SubspaceConfig`.
    #[default]
    Auto,
}

impl EigenMethod {
    /// Collapses [`EigenMethod::Auto`] into a concrete method for an
    /// OD-space dimension `p`; explicit choices return themselves.
    pub fn resolve(self, p: usize) -> EigenMethod {
        match self {
            EigenMethod::Auto => {
                if p < AUTO_TRIDIAG_MIN_DIM {
                    EigenMethod::DenseJacobi
                } else if p <= AUTO_DENSE_MAX_DIM {
                    EigenMethod::DenseTridiagonal
                } else {
                    let d = RandomizedSvdOptions::default();
                    EigenMethod::RandomizedTruncated {
                        oversample: d.oversample,
                        power_iters: d.power_iters,
                        seed: DEFAULT_SKETCH_SEED,
                    }
                }
            }
            other => other,
        }
    }

    /// Collapses to a concrete **dense** eigensolver for full-spectrum
    /// work at dimension `p` — the dispatch [`crate::thin_svd_with`] uses.
    /// Explicit dense choices return themselves; `Auto` *and*
    /// `RandomizedTruncated` (which cannot produce a full spectrum) fall
    /// back to the dimension-based dense crossover.
    pub fn resolve_dense(self, p: usize) -> EigenMethod {
        match self {
            EigenMethod::DenseJacobi | EigenMethod::DenseTridiagonal => self,
            EigenMethod::Auto | EigenMethod::RandomizedTruncated { .. } => {
                if p < AUTO_TRIDIAG_MIN_DIM {
                    EigenMethod::DenseJacobi
                } else {
                    EigenMethod::DenseTridiagonal
                }
            }
        }
    }

    /// `true` when fitting at dimension `p` takes a dense exact path.
    pub fn is_dense_for(self, p: usize) -> bool {
        matches!(self.resolve(p), EigenMethod::DenseJacobi | EigenMethod::DenseTridiagonal)
    }
}

/// The backend seam: anything that can produce the top singular triplets
/// of a data matrix can drive the subspace method.
///
/// Contract: `fit_svd(x, rank)` returns the top triplets of `x` in
/// descending σ order with orthonormal `U`/`V` panels — up to the
/// **numerical rank** of the data, which may be fewer than `rank`
/// (numerically zero directions are dropped rather than returned as
/// garbage), and may be more (the dense backend returns the full
/// spectrum; the randomized backend returns its `rank + oversample`
/// sketch width). Callers must size against the returned [`Svd::rank`],
/// never against the request.
pub trait EigenBackend {
    /// Human-readable backend name for reports and logs.
    fn name(&self) -> &'static str;

    /// Computes (at least) the top-`rank` thin SVD of `x`.
    ///
    /// # Errors
    ///
    /// Backend-specific numeric failures (empty/non-finite input,
    /// non-convergence).
    fn fit_svd(&self, x: &Matrix, rank: usize) -> Result<Svd>;
}

/// The exact dense backend: full Gram matrix + cyclic Jacobi.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenseJacobiBackend;

impl EigenBackend for DenseJacobiBackend {
    fn name(&self) -> &'static str {
        "dense-jacobi"
    }

    fn fit_svd(&self, x: &Matrix, _rank: usize) -> Result<Svd> {
        // The dense route computes the full spectrum regardless of the
        // requested rank: callers relying on tail eigenvalues (detection
        // thresholds) get them exactly.
        thin_svd_with(x, 0.0, EigenMethod::DenseJacobi)
    }
}

/// The exact dense backend on the fast path: full Gram matrix + blocked
/// Householder tridiagonalization + implicit-shift QR.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenseTridiagonalBackend;

impl EigenBackend for DenseTridiagonalBackend {
    fn name(&self) -> &'static str {
        "dense-tridiagonal"
    }

    fn fit_svd(&self, x: &Matrix, _rank: usize) -> Result<Svd> {
        // Full spectrum, same as the Jacobi backend — only the Gram
        // eigensolver differs.
        thin_svd_with(x, 0.0, EigenMethod::DenseTridiagonal)
    }
}

/// The randomized truncated backend (see [`randomized_thin_svd`]).
#[derive(Debug, Clone, Copy)]
pub struct RandomizedTruncatedBackend {
    /// Sketch options forwarded to [`randomized_thin_svd`].
    pub options: RandomizedSvdOptions,
}

impl EigenBackend for RandomizedTruncatedBackend {
    fn name(&self) -> &'static str {
        "randomized-truncated"
    }

    fn fit_svd(&self, x: &Matrix, rank: usize) -> Result<Svd> {
        randomized_thin_svd(x, rank, self.options)
    }
}

/// Computes (at least) the top-`rank` thin SVD of `x` with the selected
/// method — the one dispatch point every fitting path goes through.
///
/// # Errors
///
/// Propagates the backend's numeric errors.
///
/// # Examples
///
/// ```
/// use odflow_linalg::{truncated_svd, EigenMethod, Matrix};
///
/// let x = Matrix::from_fn(30, 40, |i, j| ((i * 3 + j * 7) % 11) as f64);
/// let dense = truncated_svd(&x, 5, EigenMethod::DenseJacobi).unwrap();
/// let auto = truncated_svd(&x, 5, EigenMethod::Auto).unwrap(); // p=40 -> dense
/// assert_eq!(dense.sigma, auto.sigma);
/// ```
pub fn truncated_svd(x: &Matrix, rank: usize, method: EigenMethod) -> Result<Svd> {
    match method.resolve(x.ncols()) {
        EigenMethod::DenseJacobi => DenseJacobiBackend.fit_svd(x, rank),
        EigenMethod::DenseTridiagonal => DenseTridiagonalBackend.fit_svd(x, rank),
        EigenMethod::RandomizedTruncated { oversample, power_iters, seed } => {
            RandomizedTruncatedBackend {
                options: RandomizedSvdOptions { oversample, power_iters, seed },
            }
            .fit_svd(x, rank)
        }
        EigenMethod::Auto => unreachable!("resolve() never returns Auto"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_resolves_by_dimension() {
        assert_eq!(EigenMethod::Auto.resolve(2), EigenMethod::DenseJacobi);
        // The paper's Abilene mesh stays on the historical Jacobi path.
        assert_eq!(EigenMethod::Auto.resolve(121), EigenMethod::DenseJacobi);
        assert_eq!(EigenMethod::Auto.resolve(AUTO_TRIDIAG_MIN_DIM - 1), EigenMethod::DenseJacobi);
        assert_eq!(EigenMethod::Auto.resolve(AUTO_TRIDIAG_MIN_DIM), EigenMethod::DenseTridiagonal);
        assert_eq!(EigenMethod::Auto.resolve(AUTO_DENSE_MAX_DIM), EigenMethod::DenseTridiagonal);
        match EigenMethod::Auto.resolve(AUTO_DENSE_MAX_DIM + 1) {
            EigenMethod::RandomizedTruncated { oversample, power_iters, seed } => {
                assert_eq!(oversample, 8);
                assert_eq!(power_iters, 2);
                assert_eq!(seed, DEFAULT_SKETCH_SEED);
            }
            other => panic!("expected randomized, got {other:?}"),
        }
        assert!(EigenMethod::Auto.is_dense_for(121));
        assert!(EigenMethod::Auto.is_dense_for(AUTO_DENSE_MAX_DIM));
        assert!(!EigenMethod::Auto.is_dense_for(90_000));
    }

    #[test]
    fn explicit_methods_resolve_to_themselves() {
        assert_eq!(EigenMethod::DenseJacobi.resolve(1_000_000), EigenMethod::DenseJacobi);
        assert_eq!(EigenMethod::DenseTridiagonal.resolve(2), EigenMethod::DenseTridiagonal);
        assert!(EigenMethod::DenseTridiagonal.is_dense_for(1_000_000));
        let r = EigenMethod::RandomizedTruncated { oversample: 3, power_iters: 1, seed: 42 };
        assert_eq!(r.resolve(4), r);
        assert!(!r.is_dense_for(4));
    }

    #[test]
    fn resolve_dense_always_lands_on_a_dense_method() {
        // Explicit dense choices pass through at every dimension.
        assert_eq!(EigenMethod::DenseJacobi.resolve_dense(10_000), EigenMethod::DenseJacobi);
        assert_eq!(EigenMethod::DenseTridiagonal.resolve_dense(4), EigenMethod::DenseTridiagonal);
        // Auto and randomized fall back to the dimension crossover.
        assert_eq!(EigenMethod::Auto.resolve_dense(121), EigenMethod::DenseJacobi);
        assert_eq!(
            EigenMethod::Auto.resolve_dense(AUTO_TRIDIAG_MIN_DIM),
            EigenMethod::DenseTridiagonal
        );
        let r = EigenMethod::RandomizedTruncated { oversample: 3, power_iters: 1, seed: 42 };
        assert_eq!(r.resolve_dense(50), EigenMethod::DenseJacobi);
        assert_eq!(r.resolve_dense(AUTO_DENSE_MAX_DIM + 1), EigenMethod::DenseTridiagonal);
    }

    #[test]
    fn dense_backend_returns_full_spectrum() {
        let x = Matrix::from_fn(12, 6, |i, j| ((i + 1) * (j + 2)) as f64 + (i as f64 * 0.3).sin());
        let svd = DenseJacobiBackend.fit_svd(&x, 2).unwrap();
        assert!(svd.rank() >= 2);
        assert_eq!(DenseJacobiBackend.name(), "dense-jacobi");
    }

    #[test]
    fn tridiagonal_backend_matches_jacobi_spectrum() {
        let x = Matrix::from_fn(30, 18, |i, j| ((i * 5 + j * 3) % 13) as f64 - 6.0);
        let jac = DenseJacobiBackend.fit_svd(&x, 4).unwrap();
        let tri = DenseTridiagonalBackend.fit_svd(&x, 4).unwrap();
        assert_eq!(DenseTridiagonalBackend.name(), "dense-tridiagonal");
        assert_eq!(jac.rank(), tri.rank());
        // Compare eigenvalues (σ²), not σ: for numerically-zero tail
        // values the sqrt amplifies the eigensolvers' eps·λ_max jitter.
        let scale = 1.0 + jac.sigma[0] * jac.sigma[0];
        for (a, b) in jac.sigma.iter().zip(&tri.sigma) {
            assert!((a * a - b * b).abs() <= 1e-11 * scale, "sigma mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn dispatch_matches_direct_calls() {
        let x = Matrix::from_fn(25, 30, |i, j| ((i * 5 + j * 3) % 13) as f64 - 6.0);
        let via_enum = truncated_svd(&x, 4, EigenMethod::DenseJacobi).unwrap();
        let direct = crate::svd::thin_svd(&x, 0.0).unwrap();
        assert_eq!(via_enum.sigma, direct.sigma);

        let via_enum = truncated_svd(&x, 4, EigenMethod::DenseTridiagonal).unwrap();
        let direct = thin_svd_with(&x, 0.0, EigenMethod::DenseTridiagonal).unwrap();
        assert_eq!(via_enum.sigma, direct.sigma);

        let method = EigenMethod::RandomizedTruncated { oversample: 6, power_iters: 2, seed: 7 };
        let via_enum = truncated_svd(&x, 4, method).unwrap();
        let direct = crate::randomized::randomized_thin_svd(
            &x,
            4,
            RandomizedSvdOptions { oversample: 6, power_iters: 2, seed: 7 },
        )
        .unwrap();
        assert_eq!(via_enum.sigma, direct.sigma);
        let backend = RandomizedTruncatedBackend { options: RandomizedSvdOptions::default() };
        assert_eq!(backend.name(), "randomized-truncated");
    }
}
