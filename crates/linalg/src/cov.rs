//! Covariance and scatter matrices of data matrices.
//!
//! PCA in the subspace method diagonalizes `X^T X` (the scatter matrix of the
//! centered OD-flow timeseries). We expose both the raw scatter matrix and
//! the unbiased sample covariance, plus the correlation matrix used when
//! traffic types with wildly different magnitudes (bytes vs flows) must be
//! compared on common footing.

use crate::center::center_columns;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Scatter matrix `X^T X` (no centering, no normalization).
///
/// For an already-centered `X` this is `(n-1)` times the sample covariance.
pub fn scatter(x: &Matrix) -> Result<Matrix> {
    if x.nrows() == 0 {
        return Err(LinalgError::Empty { op: "scatter" });
    }
    gram_txx(x)
}

/// Unbiased sample covariance matrix of the columns of `x`
/// (centers internally; divides by `n - 1`).
///
/// # Errors
///
/// [`LinalgError::Empty`] when `x` has fewer than 2 rows — a single
/// observation has no covariance.
pub fn covariance(x: &Matrix) -> Result<Matrix> {
    if x.nrows() < 2 {
        return Err(LinalgError::Empty { op: "covariance" });
    }
    let (c, _) = center_columns(x)?;
    let mut s = gram_txx(&c)?;
    s.scale_mut(1.0 / (x.nrows() as f64 - 1.0));
    Ok(s)
}

/// Correlation matrix of the columns of `x`.
///
/// Columns with zero variance yield zero correlation against everything
/// (and 1.0 on their own diagonal) rather than NaN, so downstream eigen
/// analysis stays finite when an OD pair is silent all week.
pub fn correlation(x: &Matrix) -> Result<Matrix> {
    let cov = covariance(x)?;
    let p = cov.ncols();
    let sd: Vec<f64> = (0..p).map(|j| cov[(j, j)].max(0.0).sqrt()).collect();
    let mut out = Matrix::zeros(p, p);
    for i in 0..p {
        for j in 0..p {
            if i == j {
                out[(i, j)] = 1.0;
            } else if sd[i] > 1e-150 && sd[j] > 1e-150 {
                out[(i, j)] = cov[(i, j)] / (sd[i] * sd[j]);
            }
        }
    }
    Ok(out)
}

/// Rows per parallel block in [`gram_txx`]. Fixed (never derived from the
/// thread count) so the block-ordered reduction is deterministic for any
/// pool size.
const GRAM_ROW_BLOCK: usize = 128;

/// Computes `X^T X` exploiting symmetry — a `syrk`-style rank-n update.
///
/// Each row block accumulates `S += r^T r` into a packed upper-triangle
/// buffer with contiguous slice arithmetic (no per-element `Index` calls in
/// the inner loop); blocks run in parallel on the persistent pool and
/// partial triangles are summed in block order, so the result is identical
/// for every thread count.
///
/// Within a block, rows are folded **four at a time**: one pass over the
/// packed triangle applies `r₀ᵀr₀ + r₁ᵀr₁ + r₂ᵀr₂ + r₃ᵀr₃`, quartering the
/// triangle's load/store traffic — the dominant cost once `p(p+1)/2`
/// doubles outgrow L2 (p = 512 is a 1 MB triangle). The four updates to
/// each element are sequenced in ascending row order, exactly as the
/// one-row-at-a-time loop would, so the unroll never changes a bit.
fn gram_txx(x: &Matrix) -> Result<Matrix> {
    let (n, p) = x.shape();
    if p == 0 {
        return Ok(Matrix::zeros(0, 0));
    }
    let tri_len = p * (p + 1) / 2;
    let data = x.as_slice();
    let upper = odflow_par::map_reduce(
        n,
        GRAM_ROW_BLOCK,
        |rows| {
            let mut buf = vec![0.0f64; tri_len];
            let mut i = rows.start;
            while i + 4 <= rows.end {
                let r0 = &data[i * p..(i + 1) * p];
                let r1 = &data[(i + 1) * p..(i + 2) * p];
                let r2 = &data[(i + 2) * p..(i + 3) * p];
                let r3 = &data[(i + 3) * p..(i + 4) * p];
                let mut base = 0;
                for a in 0..p {
                    let (ra0, ra1, ra2, ra3) = (r0[a], r1[a], r2[a], r3[a]);
                    let dst = &mut buf[base..base + p - a];
                    let cols = r0[a..].iter().zip(&r1[a..]).zip(&r2[a..]).zip(&r3[a..]);
                    for (d, (((&b0, &b1), &b2), &b3)) in dst.iter_mut().zip(cols) {
                        let mut acc = *d;
                        acc += ra0 * b0;
                        acc += ra1 * b1;
                        acc += ra2 * b2;
                        acc += ra3 * b3;
                        *d = acc;
                    }
                    base += p - a;
                }
                i += 4;
            }
            // Row remainder (block length not a multiple of 4): one row at
            // a time, same ascending order.
            while i < rows.end {
                let row = &data[i * p..(i + 1) * p];
                let mut base = 0;
                for a in 0..p {
                    let ra = row[a];
                    let dst = &mut buf[base..base + p - a];
                    for (d, &rb) in dst.iter_mut().zip(&row[a..]) {
                        *d += ra * rb;
                    }
                    base += p - a;
                }
                i += 1;
            }
            buf
        },
        |mut acc, block| {
            for (a, b) in acc.iter_mut().zip(&block) {
                *a += b;
            }
            acc
        },
    )
    .unwrap_or_else(|| vec![0.0; tri_len]);

    // Unpack the triangle and mirror it.
    let mut s = Matrix::zeros(p, p);
    let out = s.as_mut_slice();
    let mut base = 0;
    for a in 0..p {
        for (off, v) in upper[base..base + p - a].iter().enumerate() {
            let b = a + off;
            out[a * p + b] = *v;
            out[b * p + a] = *v;
        }
        base += p - a;
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_matches_naive() {
        let x = Matrix::from_fn(5, 3, |i, j| (i as f64 + 1.0) * (j as f64 - 1.0) + 0.5);
        let s = scatter(&x).unwrap();
        let naive = x.transpose().matmul(&x).unwrap();
        assert!(s.approx_eq(&naive, 1e-10));
    }

    #[test]
    fn gram_row_quad_matches_single_row_bitwise() {
        // The 4-row unroll must reproduce the one-row-at-a-time packed
        // triangle bit for bit, across row counts hitting every quad
        // remainder (0..3) and across thread limits. Row counts stay
        // within one 128-row block: across blocks the (unchanged)
        // block-order reduction associates sums differently from a flat
        // sequential reference, which is covered by the thread-invariance
        // tests instead.
        for &n in &[1usize, 2, 3, 4, 5, 7, 9, 16, 127, 128] {
            let p = 6;
            let x = Matrix::from_fn(n, p, |i, j| ((i * 31 + j * 17) % 103) as f64 / 103.0 - 0.47);
            // Reference: ascending-row accumulation into the same packed
            // upper triangle, one row at a time (the pre-unroll kernel).
            let tri_len = p * (p + 1) / 2;
            let mut buf = vec![0.0f64; tri_len];
            for i in 0..n {
                let row = &x.as_slice()[i * p..(i + 1) * p];
                let mut base = 0;
                for a in 0..p {
                    for (off, &rb) in row[a..].iter().enumerate() {
                        buf[base + off] += row[a] * rb;
                    }
                    base += p - a;
                }
            }
            let mut reference = Matrix::zeros(p, p);
            let mut base = 0;
            for a in 0..p {
                for (off, &v) in buf[base..base + p - a].iter().enumerate() {
                    reference[(a, a + off)] = v;
                    reference[(a + off, a)] = v;
                }
                base += p - a;
            }
            for threads in [1usize, 4] {
                let s = odflow_par::with_thread_limit(threads, || scatter(&x).unwrap());
                assert_eq!(s.as_slice(), reference.as_slice(), "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn covariance_known_2d() {
        // Two perfectly correlated columns.
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let c = covariance(&x).unwrap();
        assert!((c[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((c[(1, 1)] - 4.0).abs() < 1e-12);
        assert!((c[(0, 1)] - 2.0).abs() < 1e-12);
        assert!((c[(0, 1)] - c[(1, 0)]).abs() < 1e-15);
    }

    #[test]
    fn covariance_is_symmetric_psd_diag() {
        let x = Matrix::from_fn(20, 4, |i, j| ((i * 13 + j * 7) % 17) as f64);
        let c = covariance(&x).unwrap();
        assert!(c.is_symmetric(1e-12));
        for j in 0..4 {
            assert!(c[(j, j)] >= 0.0);
        }
    }

    #[test]
    fn correlation_diagonal_ones_and_bounds() {
        let x = Matrix::from_fn(30, 3, |i, j| ((i * 7 + j * j * 5 + 3) % 23) as f64);
        let r = correlation(&x).unwrap();
        for i in 0..3 {
            assert!((r[(i, i)] - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert!(r[(i, j)] <= 1.0 + 1e-9 && r[(i, j)] >= -1.0 - 1e-9);
            }
        }
    }

    #[test]
    fn correlation_perfect() {
        let x = Matrix::from_rows(&[vec![1.0, -1.0], vec![2.0, -2.0], vec![3.0, -3.0]]).unwrap();
        let r = correlation(&x).unwrap();
        assert!((r[(0, 1)] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_constant_column_finite() {
        let x = Matrix::from_rows(&[vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]]).unwrap();
        let r = correlation(&x).unwrap();
        assert!(r.all_finite());
        assert_eq!(r[(0, 1)], 0.0);
        assert_eq!(r[(0, 0)], 1.0);
    }

    #[test]
    fn too_few_rows_rejected() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(covariance(&x).is_err());
        assert!(scatter(&Matrix::zeros(0, 2)).is_err());
    }
}
