//! Blocked Householder tridiagonalization with compact-WY back-transform.
//!
//! First stage of the [`crate::eigen_symmetric_tridiagonal`] solver: a
//! symmetric `A` is reduced to `T = Qᵀ A Q` with `T` tridiagonal and
//! `Q = H₀ H₁ ⋯ H_{n-3}` a product of Householder reflectors
//! `H_j = I - τ_j v_j v_jᵀ` (LAPACK `dsytrd` convention: `v_j` is zero
//! through index `j`, one at `j + 1`, stored below). The reduction is
//! *blocked* in the `dlatrd` style: a panel of [`TRIDIAG_PANEL`] columns is
//! factored using only row/vector updates, accumulating the rank-2k
//! correction pair `(V, W)`, and the trailing square block then absorbs the
//! whole panel in one `A ← A - V Wᵀ - W Vᵀ` update ([`syr2k_update`]) — a
//! symmetric rank-2k matmul that runs on the same register-tiled,
//! row-parallel pattern as `Matrix::matmul`. After the tridiagonal
//! eigenproblem is solved, [`back_transform`] maps the eigenvectors back
//! through the stored reflectors per panel as the compact-WY block
//! `Q_panel = I - V T_wy Vᵀ`, so the whole back-transformation is three
//! dense matmuls per panel instead of `n` rank-1 updates.
//!
//! Determinism: the panel arithmetic is serial; the only parallel pieces —
//! the [`crate::matrix::symv_block`] matvec, the [`syr2k_update`] trailing
//! update, and the `Matrix::matmul` calls of the back-transform — decompose
//! by fixed row blocks and accumulate in fixed order, so the factorization
//! is bit-identical for every `ODFLOW_THREADS`.

use crate::matrix::{symv_block, Matrix};
use crate::vecops;

/// Panel width of the blocked tridiagonalization (the `k` of the rank-2k
/// trailing update). 32 keeps the panel's `V`/`W` working set under
/// 2 × 32 rows of the matrix while giving the trailing syr2k enough
/// arithmetic intensity to hide its memory traffic.
pub(crate) const TRIDIAG_PANEL: usize = 32;

/// Rows per parallel task in [`syr2k_update`]; fixed so the decomposition
/// depends only on the trailing-block size.
const SYR2K_ROW_BLOCK: usize = 16;

/// The Householder factorization of a symmetric matrix: tridiagonal
/// `(d, e)` plus the reflectors needed to rebuild `Q`.
pub(crate) struct TridiagFactor {
    /// Diagonal of `T`, length `n`.
    pub d: Vec<f64>,
    /// Subdiagonal of `T`, length `n` with `e[n-1] = 0` as a sentinel
    /// (the implicit-shift QR sweep reads one past the active block).
    pub e: Vec<f64>,
    /// Reflector vectors, one per reduced column (`n - 2` of them), each
    /// stored full-length: `vt[j]` is zero through index `j`, one at
    /// `j + 1`. Row-major by reflector so panel matmuls can borrow them
    /// as matrix rows without copies.
    pub vt: Vec<Vec<f64>>,
    /// Scalar factors `τ_j`, parallel to `vt`.
    pub taus: Vec<f64>,
}

/// Generates an elementary reflector for the column `x` (length `m ≥ 1`):
/// on return `x` holds the reflector vector `v` (with `v[0] = 1`) and the
/// result is `(τ, β)` such that `(I - τ v vᵀ) x_orig = β e₁`.
///
/// LAPACK `dlarfg` arithmetic: `β = -sign(α) √(α² + σ)` with `α = x[0]`
/// and `σ = ‖x[1..]‖²`; a zero tail returns `τ = 0` (no reflection).
fn make_householder(x: &mut [f64]) -> (f64, f64) {
    let alpha = x[0];
    let sigma = vecops::norm_sq(&x[1..]);
    if sigma == 0.0 {
        x[0] = 1.0;
        return (0.0, alpha);
    }
    let r = (alpha * alpha + sigma).sqrt();
    let beta = if alpha >= 0.0 { -r } else { r };
    let tau = (beta - alpha) / beta;
    let inv = 1.0 / (alpha - beta);
    for v in &mut x[1..] {
        *v *= inv;
    }
    x[0] = 1.0;
    (tau, beta)
}

/// Reduces a symmetric matrix (taken by value as the working copy) to
/// tridiagonal form, returning `(d, e)` and the stored reflectors.
///
/// The caller guarantees `w` is square, finite, and exactly symmetric
/// (the eigensolver entry point symmetrizes first); the reduction keeps
/// the trailing working block exactly symmetric — the syr2k update writes
/// both triangles from the same per-element expression, and IEEE `+`/`×`
/// are commutative — so full-row reads stay valid throughout.
pub(crate) fn tridiagonalize(mut w: Matrix) -> TridiagFactor {
    let n = w.nrows();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    let reflectors = n.saturating_sub(2);
    let mut vt: Vec<Vec<f64>> = Vec::with_capacity(reflectors);
    let mut taus: Vec<f64> = Vec::with_capacity(reflectors);

    let mut k = 0;
    while k < reflectors {
        let cols = TRIDIAG_PANEL.min(reflectors - k);
        // Panel-local W columns (full length, zero through index j+1's
        // predecessor), parallel to vt[k..k + cols].
        let mut wt: Vec<Vec<f64>> = Vec::with_capacity(cols);
        for jj in 0..cols {
            let j = k + jj;
            // Fold the panel's previous reflectors into row j only (the
            // trailing block is updated once per panel): working on the
            // row — contiguous in row-major storage — is equivalent to the
            // column update because the block stays symmetric.
            {
                let row = w.row_mut(j).expect("panel row in bounds");
                for q in 0..jj {
                    let vq = &vt[k + q];
                    let wq = &wt[q];
                    vecops::axpy2(-wq[j], &vq[j..], -vq[j], &wq[j..], &mut row[j..]);
                }
                d[j] = row[j];
                let (tau, beta) = make_householder(&mut row[j + 1..]);
                e[j] = beta;
                taus.push(tau);
                let mut v = vec![0.0; n];
                v[j + 1..].copy_from_slice(&row[j + 1..]);
                vt.push(v);
            }
            let v_tail = &vt[j][j + 1..];
            let tau = taus[j];
            // w_j = τ (A - V Wᵀ - W Vᵀ) v - (τ²/2) (vᵀ (…) v) v, computed
            // on the trailing block rows j+1.. of the *panel-start* matrix
            // (exactly what `w` still holds there).
            let mut p = symv_block(w.as_slice(), n, j + 1, v_tail);
            for q in 0..jj {
                let vq = &vt[k + q][j + 1..];
                let wq = &wt[q][j + 1..];
                let s_w = vecops::dot4(wq, v_tail);
                let s_v = vecops::dot4(vq, v_tail);
                vecops::axpy2(-s_w, vq, -s_v, wq, &mut p);
            }
            vecops::scale(&mut p, tau);
            let half = 0.5 * tau * vecops::dot4(&p, v_tail);
            vecops::axpy(-half, v_tail, &mut p);
            let mut w_col = vec![0.0; n];
            w_col[j + 1..].copy_from_slice(&p);
            wt.push(w_col);
        }
        // Absorb the whole panel into the trailing square block:
        // A[t0.., t0..] -= V Wᵀ + W Vᵀ.
        let t0 = k + cols;
        syr2k_update(&mut w, t0, &vt[k..k + cols], &wt);
        k += cols;
    }

    // The final (≤ 2)×(≤ 2) corner is already tridiagonal.
    for j in reflectors..n {
        d[j] = w[(j, j)];
        if j + 1 < n {
            e[j] = w[(j, j + 1)];
        }
    }
    TridiagFactor { d, e, vt, taus }
}

/// Symmetric rank-2k trailing update `A[t0.., t0..] -= V Wᵀ + W Vᵀ`, where
/// `vt`/`wt` hold the panel's reflector and update columns as full-length
/// rows.
///
/// Output rows fan out over the pool in [`SYR2K_ROW_BLOCK`] blocks; within
/// a row the panel columns are folded two at a time — each output element
/// accumulates `v_q[i]·w_q[c] + w_q[i]·v_q[c]` in ascending-`q` order with
/// fixed-width zip chains, the same register-tiling recipe as
/// `matmul_tile_2x4`. The (i, c) and (c, i) elements sum bitwise-identical
/// terms, so the block stays exactly symmetric.
fn syr2k_update(w: &mut Matrix, t0: usize, vt: &[Vec<f64>], wt: &[Vec<f64>]) {
    let n = w.ncols();
    if t0 >= n {
        return;
    }
    let trailing = &mut w.as_mut_slice()[t0 * n..];
    odflow_par::parallel_chunks(trailing, SYR2K_ROW_BLOCK * n, |blk, rows| {
        let first = t0 + blk * SYR2K_ROW_BLOCK;
        for (i, row) in (first..).zip(rows.chunks_exact_mut(n)) {
            let out = &mut row[t0..];
            let mut q = 0;
            while q + 2 <= vt.len() {
                let (v0, w0) = (&vt[q][t0..], &wt[q][t0..]);
                let (v1, w1) = (&vt[q + 1][t0..], &wt[q + 1][t0..]);
                let (cv0, cw0) = (vt[q][i], wt[q][i]);
                let (cv1, cw1) = (vt[q + 1][i], wt[q + 1][i]);
                let cols = v0.iter().zip(w0).zip(v1.iter().zip(w1));
                for (o, ((&v0c, &w0c), (&v1c, &w1c))) in out.iter_mut().zip(cols) {
                    let mut acc = *o;
                    acc -= cv0 * w0c + cw0 * v0c;
                    acc -= cv1 * w1c + cw1 * v1c;
                    *o = acc;
                }
                q += 2;
            }
            if q < vt.len() {
                let (vq, wq) = (&vt[q][t0..], &wt[q][t0..]);
                let (cv, cw) = (vt[q][i], wt[q][i]);
                vecops::axpy2(-cv, wq, -cw, vq, out);
            }
        }
    });
}

/// Maps tridiagonal eigenvectors back to the original basis:
/// `Z ← Q Z = H₀ ⋯ H_{n-3} Z`, applied per panel in reverse order as the
/// compact-WY block `Q_panel = I - V T_wy Vᵀ` — three deterministic
/// parallel matmuls per panel (`Y = Vᵀ Z`, `T_wy Y`, `Z -= V (T_wy Y)`).
pub(crate) fn back_transform(z: Matrix, factor: &TridiagFactor) -> Matrix {
    let r = factor.vt.len();
    if r == 0 {
        return z;
    }
    let mut z = z;
    let blocks = r.div_ceil(TRIDIAG_PANEL);
    for b in (0..blocks).rev() {
        let k = b * TRIDIAG_PANEL;
        let cols = TRIDIAG_PANEL.min(r - k);
        let t_wy = build_wy_t(&factor.vt[k..k + cols], &factor.taus[k..k + cols], k);
        let v_rows =
            Matrix::from_rows(&factor.vt[k..k + cols]).expect("reflector rows are equal length");
        let y = v_rows.matmul(&z).expect("V^T Z shapes agree");
        let ty = t_wy.matmul(&y).expect("T Y shapes agree");
        let update = v_rows.transpose().matmul(&ty).expect("V (T Y) shapes agree");
        z = z.sub(&update).expect("update has Z's shape");
    }
    z
}

/// Builds the upper-triangular compact-WY factor `T_wy` for a panel of
/// reflectors (LAPACK `dlarft` forward/columnwise recurrence):
/// `T[j][j] = τ_j`, `T[0..j, j] = -τ_j · T[0..j, 0..j] · (Vᵀ v_j)`.
///
/// The reflector support starts at `k + j + 1`, so each `Vᵀ v_j` dot runs
/// over the overlap `[k + j + 1, n)` only.
fn build_wy_t(vt: &[Vec<f64>], taus: &[f64], k: usize) -> Matrix {
    let cols = vt.len();
    let mut t = Matrix::zeros(cols, cols);
    for jj in 0..cols {
        let tail = k + jj + 1;
        let vj = &vt[jj][tail..];
        let y: Vec<f64> = (0..jj).map(|q| vecops::dot4(&vt[q][tail..], vj)).collect();
        for q2 in 0..jj {
            let mut s = 0.0;
            for (q, &yq) in y.iter().enumerate().skip(q2) {
                s += t[(q2, q)] * yq;
            }
            t[(q2, jj)] = -taus[jj] * s;
        }
        t[(jj, jj)] = taus[jj];
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic dense symmetric test matrix with decent spread.
    fn sym(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            let lo = i.min(j) as f64;
            let hi = i.max(j) as f64;
            (1.0 + lo) / (2.0 + hi)
                + 0.05 * (((i.min(j) * 31 + i.max(j) * 17) % 101) as f64)
                + if i == j { 2.0 + i as f64 * 0.1 } else { 0.0 }
        })
    }

    /// Rebuilds `Q` explicitly by applying the reflectors to the identity.
    fn q_matrix(factor: &TridiagFactor, n: usize) -> Matrix {
        back_transform(Matrix::identity(n), factor)
    }

    /// Builds the tridiagonal matrix from `(d, e)`.
    fn t_matrix(factor: &TridiagFactor, n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                factor.d[i]
            } else if j + 1 == i || i + 1 == j {
                factor.e[i.min(j)]
            } else {
                0.0
            }
        })
    }

    #[test]
    fn reconstructs_q_t_qt_across_panel_boundaries() {
        // Sizes straddling one, several, and ragged panel counts.
        for &n in &[1usize, 2, 3, 5, 8, TRIDIAG_PANEL, TRIDIAG_PANEL + 1, 2 * TRIDIAG_PANEL + 7] {
            let a = sym(n);
            let factor = tridiagonalize(a.clone());
            let q = q_matrix(&factor, n);
            let t = t_matrix(&factor, n);
            let rebuilt = q.matmul(&t).unwrap().matmul(&q.transpose()).unwrap();
            let scale = a.max_abs().max(1.0);
            assert!(
                rebuilt.approx_eq(&a, 1e-10 * scale),
                "n={n}: max err {}",
                rebuilt.sub(&a).unwrap().max_abs()
            );
        }
    }

    #[test]
    fn q_is_orthogonal() {
        for &n in &[6usize, TRIDIAG_PANEL + 3, 2 * TRIDIAG_PANEL] {
            let factor = tridiagonalize(sym(n));
            let q = q_matrix(&factor, n);
            let qtq = q.transpose().matmul(&q).unwrap();
            assert!(qtq.approx_eq(&Matrix::identity(n), 1e-10), "n={n}");
        }
    }

    #[test]
    fn trace_is_preserved() {
        let n = 41;
        let a = sym(n);
        let factor = tridiagonalize(a.clone());
        let tr_a = a.trace().unwrap();
        let tr_t: f64 = factor.d.iter().sum();
        assert!((tr_a - tr_t).abs() < 1e-8 * tr_a.abs().max(1.0), "{tr_a} vs {tr_t}");
    }

    #[test]
    fn blocked_reduction_is_thread_count_invariant() {
        let n = 2 * TRIDIAG_PANEL + 13;
        let a = sym(n);
        let serial = odflow_par::with_thread_limit(1, || tridiagonalize(a.clone()));
        for &threads in &[4usize, 64] {
            let par = odflow_par::with_thread_limit(threads, || tridiagonalize(a.clone()));
            assert_eq!(par.d, serial.d, "threads={threads}");
            assert_eq!(par.e, serial.e, "threads={threads}");
            assert_eq!(par.taus, serial.taus, "threads={threads}");
            assert_eq!(par.vt, serial.vt, "threads={threads}");
        }
    }

    #[test]
    fn back_transform_is_thread_count_invariant() {
        let n = TRIDIAG_PANEL + 19;
        let factor = tridiagonalize(sym(n));
        let z0 = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 13) as f64 / 13.0 - 0.5);
        let serial = odflow_par::with_thread_limit(1, || back_transform(z0.clone(), &factor));
        for &threads in &[4usize, 64] {
            let par =
                odflow_par::with_thread_limit(threads, || back_transform(z0.clone(), &factor));
            assert_eq!(par.as_slice(), serial.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn syr2k_matches_naive_bitwise() {
        // The 2-column register tile must not change a bit versus folding
        // the panel one column at a time with the same per-element
        // expression order... so compare against an explicit re-derivation
        // of the kernel's own accumulation order, and against a plain
        // matmul-based update numerically.
        let n = 23;
        let t0 = 5;
        let cols = 5; // odd: exercises the single-column remainder
        let mk = |seed: usize| -> Vec<Vec<f64>> {
            (0..cols)
                .map(|q| {
                    (0..n)
                        .map(|i| {
                            if i < t0 {
                                0.0
                            } else {
                                (((i * 13 + q * 29 + seed) % 37) as f64) / 37.0 - 0.4
                            }
                        })
                        .collect()
                })
                .collect()
        };
        let vt = mk(3);
        let wt = mk(11);
        let base = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 11) % 17) as f64 * 0.25);

        let mut tiled = base.clone();
        syr2k_update(&mut tiled, t0, &vt, &wt);

        // Naive: same q-ascending, pairwise-fused element expression.
        let mut naive = base.clone();
        for i in t0..n {
            for c in t0..n {
                let mut acc = naive[(i, c)];
                let mut q = 0;
                while q + 2 <= cols {
                    acc -= vt[q][i] * wt[q][c] + wt[q][i] * vt[q][c];
                    acc -= vt[q + 1][i] * wt[q + 1][c] + wt[q + 1][i] * vt[q + 1][c];
                    q += 2;
                }
                if q < cols {
                    acc += (-vt[q][i]) * wt[q][c] + (-wt[q][i]) * vt[q][c];
                }
                naive[(i, c)] = acc;
            }
        }
        assert_eq!(tiled.as_slice(), naive.as_slice());

        // And the result is exactly symmetric when the input is.
        let sym_base = Matrix::from_fn(n, n, |i, j| ((i.min(j) * 5 + i.max(j) * 11) % 17) as f64);
        let mut updated = sym_base;
        syr2k_update(&mut updated, t0, &vt, &wt);
        assert_eq!(updated.max_asymmetry(), 0.0);
    }

    #[test]
    fn householder_annihilates_tail() {
        let mut x = vec![3.0, 1.0, -2.0, 0.5];
        let orig = x.clone();
        let (tau, beta) = make_householder(&mut x);
        // Apply H = I - tau v v^T to the original vector: expect beta e1.
        let vdotx = vecops::dot(&x, &orig);
        let reflected: Vec<f64> = orig.iter().zip(&x).map(|(&o, &v)| o - tau * vdotx * v).collect();
        assert!((reflected[0] - beta).abs() < 1e-12);
        for &r in &reflected[1..] {
            assert!(r.abs() < 1e-12, "tail not annihilated: {r}");
        }
        // Norm preserved: |beta| = ||x||.
        assert!((beta.abs() - vecops::norm(&orig)).abs() < 1e-12);
    }

    #[test]
    fn householder_zero_tail_is_identity() {
        let mut x = vec![4.0, 0.0, 0.0];
        let (tau, beta) = make_householder(&mut x);
        assert_eq!(tau, 0.0);
        assert_eq!(beta, 4.0);
    }
}
