//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! PCA on the OD-flow timeseries reduces to diagonalizing the `p x p`
//! covariance (or scatter) matrix `X^T X`, with `p = 121` OD pairs for the
//! Abilene-like topology. At that size the cyclic Jacobi method is an ideal
//! fit: it is unconditionally convergent for symmetric input, delivers
//! eigenvectors orthogonal to working precision, and has no failure modes
//! requiring shift heuristics. Each sweep is `O(p^3)`; convergence takes a
//! handful of sweeps.
//!
//! References: Golub & Van Loan, *Matrix Computations*, §8.5 (Jacobi methods);
//! Jackson, *A User's Guide to Principal Components* (the paper's PCA
//! reference \[11\]).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition.
///
/// Eigenpairs are sorted by **descending** eigenvalue, matching the paper's
/// convention that eigenflow `u_1` captures the most variance.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, descending. For a covariance matrix these are the
    /// variances captured by each principal axis.
    pub eigenvalues: Vec<f64>,
    /// Matrix whose **columns** are the corresponding unit eigenvectors.
    pub eigenvectors: Matrix,
    /// Number of Jacobi sweeps performed.
    pub sweeps: usize,
}

impl EigenDecomposition {
    /// The `k`-th eigenvector (column of [`Self::eigenvectors`]) as a `Vec`.
    pub fn eigenvector(&self, k: usize) -> Result<Vec<f64>> {
        self.eigenvectors.col(k)
    }

    /// Fraction of total variance captured by the top `k` eigenvalues.
    ///
    /// Negative eigenvalues (numerical noise around zero for rank-deficient
    /// inputs) are clamped to zero for this summary.
    pub fn variance_captured(&self, k: usize) -> f64 {
        let clamped: Vec<f64> = self.eigenvalues.iter().map(|&l| l.max(0.0)).collect();
        let total: f64 = clamped.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        clamped.iter().take(k).sum::<f64>() / total
    }

    /// Effective rank: number of eigenvalues above `tol * max_eigenvalue`.
    pub fn effective_rank(&self, tol: f64) -> usize {
        let max = self.eigenvalues.first().copied().unwrap_or(0.0).max(0.0);
        if max == 0.0 {
            return 0;
        }
        self.eigenvalues.iter().filter(|&&l| l > tol * max).count()
    }
}

/// Options controlling the Jacobi iteration.
#[derive(Debug, Clone, Copy)]
pub struct JacobiOptions {
    /// Convergence threshold on the off-diagonal Frobenius norm, relative to
    /// the Frobenius norm of the input. Default `1e-14`.
    pub rel_tolerance: f64,
    /// Maximum number of sweeps before declaring non-convergence.
    /// Default 64 (classic Jacobi converges in < 15 sweeps for any
    /// reasonable matrix; 64 is a generous safety margin).
    pub max_sweeps: usize,
    /// Maximum tolerated asymmetry `max |a_ij - a_ji|` in the input, relative
    /// to its max absolute entry. Default `1e-9`. Inputs within tolerance are
    /// symmetrized as `(A + A^T) / 2` before iterating.
    pub symmetry_tolerance: f64,
}

impl Default for JacobiOptions {
    fn default() -> Self {
        JacobiOptions { rel_tolerance: 1e-14, max_sweeps: 64, symmetry_tolerance: 1e-9 }
    }
}

/// Computes the eigendecomposition of a symmetric matrix with default
/// [`JacobiOptions`].
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] for rectangular input.
/// * [`LinalgError::NotSymmetric`] when asymmetry exceeds tolerance.
/// * [`LinalgError::NonFinite`] when the input contains NaN or infinity.
/// * [`LinalgError::NoConvergence`] if the sweep budget is exhausted
///   (practically unreachable for finite symmetric input).
///
/// # Examples
///
/// ```
/// use odflow_linalg::{Matrix, eigen_symmetric};
///
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
/// let e = eigen_symmetric(&a).unwrap();
/// assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
/// assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
/// ```
pub fn eigen_symmetric(a: &Matrix) -> Result<EigenDecomposition> {
    eigen_symmetric_with(a, JacobiOptions::default())
}

/// Computes the eigendecomposition of a symmetric matrix with explicit
/// options. See [`eigen_symmetric`].
pub fn eigen_symmetric_with(a: &Matrix, opts: JacobiOptions) -> Result<EigenDecomposition> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { op: "eigen_symmetric", shape: a.shape() });
    }
    if !a.all_finite() {
        return Err(LinalgError::NonFinite { op: "eigen_symmetric" });
    }
    let n = a.nrows();
    if n == 0 {
        return Ok(EigenDecomposition {
            eigenvalues: vec![],
            eigenvectors: Matrix::zeros(0, 0),
            sweeps: 0,
        });
    }

    let scale = a.max_abs();
    let asym = a.max_asymmetry();
    if scale > 0.0 && asym > opts.symmetry_tolerance * scale {
        return Err(LinalgError::NotSymmetric { max_asymmetry: asym });
    }

    // Work on a symmetrized copy; tiny asymmetries from floating-point
    // accumulation in X^T X are averaged away.
    let mut w = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
    let mut v = Matrix::identity(n);

    let fro = w.frobenius_norm();
    let tol = if fro > 0.0 { opts.rel_tolerance * fro } else { 0.0 };

    let mut sweeps = 0;
    while off_diagonal_norm(&w) > tol {
        if sweeps >= opts.max_sweeps {
            return Err(LinalgError::NoConvergence { op: "eigen_symmetric", iterations: sweeps });
        }
        for p in 0..n - 1 {
            for q in p + 1..n {
                let apq = w[(p, q)];
                if apq == 0.0 {
                    continue;
                }
                let app = w[(p, p)];
                let aqq = w[(q, q)];
                // Stable computation of the rotation (Golub & Van Loan 8.5.2):
                // t = sign(theta) / (|theta| + sqrt(theta^2 + 1)),
                // theta = (aqq - app) / (2 apq).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                apply_rotation(&mut w, p, q, c, s);
                rotate_eigenvectors(&mut v, p, q, c, s);
            }
        }
        sweeps += 1;
    }

    // Extract eigenvalues from the (now nearly diagonal) working matrix and
    // sort eigenpairs by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| w[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("finite eigenvalues"));

    let eigenvalues: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let eigenvectors = v.select_cols(&order)?;

    Ok(EigenDecomposition { eigenvalues, eigenvectors, sweeps })
}

/// Frobenius norm of the strictly off-diagonal part.
fn off_diagonal_norm(a: &Matrix) -> f64 {
    let n = a.nrows();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += a[(i, j)] * a[(i, j)];
            }
        }
    }
    s.sqrt()
}

/// Applies the two-sided Jacobi rotation `J^T W J` in the `(p, q)` plane.
fn apply_rotation(w: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = w.nrows();
    let app = w[(p, p)];
    let aqq = w[(q, q)];
    let apq = w[(p, q)];

    w[(p, p)] = c * c * app - 2.0 * s * c * apq + s * s * aqq;
    w[(q, q)] = s * s * app + 2.0 * s * c * apq + c * c * aqq;
    w[(p, q)] = 0.0;
    w[(q, p)] = 0.0;

    for i in 0..n {
        if i != p && i != q {
            let aip = w[(i, p)];
            let aiq = w[(i, q)];
            w[(i, p)] = c * aip - s * aiq;
            w[(p, i)] = w[(i, p)];
            w[(i, q)] = s * aip + c * aiq;
            w[(q, i)] = w[(i, q)];
        }
    }
}

/// Accumulates the rotation into the eigenvector matrix: `V <- V J`.
fn rotate_eigenvectors(v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = v.nrows();
    for i in 0..n {
        let vip = v[(i, p)];
        let viq = v[(i, q)];
        v[(i, p)] = c * vip - s * viq;
        v[(i, q)] = s * vip + c * viq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &EigenDecomposition) -> Matrix {
        // A = V diag(lambda) V^T
        let v = &e.eigenvectors;
        let d = Matrix::from_diag(&e.eigenvalues);
        v.matmul(&d).unwrap().matmul(&v.transpose()).unwrap()
    }

    #[test]
    fn two_by_two_known() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = eigen_symmetric(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
        // Eigenvector for lambda=3 is (1,1)/sqrt(2) up to sign.
        let v0 = e.eigenvector(0).unwrap();
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((v0[0] - v0[1]).abs() < 1e-12);
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let a = Matrix::from_diag(&[5.0, 3.0, 1.0]);
        let e = eigen_symmetric(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![5.0, 3.0, 1.0]);
        assert_eq!(e.sweeps, 0);
    }

    #[test]
    fn sorts_descending_even_with_negatives() {
        let a = Matrix::from_diag(&[-2.0, 7.0, 0.5]);
        let e = eigen_symmetric(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![7.0, 0.5, -2.0]);
    }

    #[test]
    fn reconstruction_3x3() {
        let a =
            Matrix::from_rows(&[vec![4.0, 1.0, 0.5], vec![1.0, 3.0, 0.25], vec![0.5, 0.25, 2.0]])
                .unwrap();
        let e = eigen_symmetric(&a).unwrap();
        assert!(reconstruct(&e).approx_eq(&a, 1e-10));
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = Matrix::from_fn(8, 8, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let e = eigen_symmetric(&a).unwrap();
        let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(8), 1e-10));
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a =
            Matrix::from_fn(6, 6, |i, j| ((i * j) as f64).sin() + if i == j { 3.0 } else { 0.0 });
        let sym = Matrix::from_fn(6, 6, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
        let e = eigen_symmetric(&sym).unwrap();
        let tr = sym.trace().unwrap();
        let sum: f64 = e.eigenvalues.iter().sum();
        assert!((tr - sum).abs() < 1e-9, "trace {tr} vs eigensum {sum}");
    }

    #[test]
    fn rank_deficient_low_rank() {
        // Rank-1: outer product vv^T, eigenvalues (||v||^2, 0, 0).
        let v = [1.0, 2.0, 3.0];
        let a = Matrix::from_fn(3, 3, |i, j| v[i] * v[j]);
        let e = eigen_symmetric(&a).unwrap();
        assert!((e.eigenvalues[0] - 14.0).abs() < 1e-10);
        assert!(e.eigenvalues[1].abs() < 1e-10);
        assert!(e.eigenvalues[2].abs() < 1e-10);
        assert_eq!(e.effective_rank(1e-9), 1);
    }

    #[test]
    fn variance_captured_monotone() {
        let a = Matrix::from_diag(&[4.0, 3.0, 2.0, 1.0]);
        let e = eigen_symmetric(&a).unwrap();
        assert!((e.variance_captured(1) - 0.4).abs() < 1e-12);
        assert!((e.variance_captured(4) - 1.0).abs() < 1e-12);
        assert!(e.variance_captured(2) > e.variance_captured(1));
        assert_eq!(e.variance_captured(0), 0.0);
    }

    #[test]
    fn rejects_rectangular_and_asymmetric() {
        assert!(matches!(
            eigen_symmetric(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        let a = Matrix::from_rows(&[vec![1.0, 5.0], vec![0.0, 1.0]]).unwrap();
        assert!(matches!(eigen_symmetric(&a), Err(LinalgError::NotSymmetric { .. })));
    }

    #[test]
    fn rejects_nonfinite() {
        let mut a = Matrix::identity(2);
        a[(0, 0)] = f64::NAN;
        assert!(matches!(eigen_symmetric(&a), Err(LinalgError::NonFinite { .. })));
    }

    #[test]
    fn empty_matrix_ok() {
        let e = eigen_symmetric(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.eigenvalues.is_empty());
    }

    #[test]
    fn tolerates_tiny_asymmetry() {
        // Asymmetry at 1e-12 relative is well within the default tolerance.
        let mut a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        a[(0, 1)] += 1e-13;
        let e = eigen_symmetric(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn moderately_sized_psd_matrix() {
        // Covariance-like matrix: A = B^T B is PSD; all eigenvalues >= 0.
        let b = Matrix::from_fn(40, 20, |i, j| ((i * 31 + j * 17) % 101) as f64 / 101.0 - 0.5);
        let a = b.transpose().matmul(&b).unwrap();
        let e = eigen_symmetric(&a).unwrap();
        for &l in &e.eigenvalues {
            assert!(l > -1e-9, "PSD eigenvalue went negative: {l}");
        }
        // Eigenvalues descending.
        for w in e.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(reconstruct(&e).approx_eq(&a, 1e-8));
    }
}
