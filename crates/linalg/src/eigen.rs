//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! PCA on the OD-flow timeseries reduces to diagonalizing the `p x p`
//! covariance (or scatter) matrix `X^T X`, with `p = 121` OD pairs for the
//! Abilene-like topology. At that size the cyclic Jacobi method is an ideal
//! fit: it is unconditionally convergent for symmetric input, delivers
//! eigenvectors orthogonal to working precision, and has no failure modes
//! requiring shift heuristics. Each sweep is `O(p^3)`; convergence takes a
//! handful of sweeps.
//!
//! References: Golub & Van Loan, *Matrix Computations*, §8.5 (Jacobi methods
//! and parallel orderings); Jackson, *A User's Guide to Principal
//! Components* (the paper's PCA reference \[11\]).
//!
//! For matrices at or below the paper's scale (`p = 121`) the classic serial
//! cyclic sweep is used unchanged. From [`JACOBI_PARALLEL_MIN_DIM`] upward
//! each sweep switches to a round-robin *parallel ordering*: the `n(n-1)/2`
//! pivots are organized into `n-1` rounds of `n/2` disjoint planes, and each
//! round's rotations are applied concurrently — first as column updates
//! (parallel over row blocks), then as row updates (parallel over disjoint
//! row pairs), then to the eigenvector accumulator. The ordering choice
//! depends only on the matrix dimension, and every phase writes disjoint
//! data, so results are bit-identical for any thread count.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition.
///
/// Eigenpairs are sorted by **descending** eigenvalue, matching the paper's
/// convention that eigenflow `u_1` captures the most variance.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, descending. For a covariance matrix these are the
    /// variances captured by each principal axis.
    pub eigenvalues: Vec<f64>,
    /// Matrix whose **columns** are the corresponding unit eigenvectors.
    pub eigenvectors: Matrix,
    /// Iterations of the underlying solver: Jacobi sweeps for
    /// [`eigen_symmetric`], QR bulge-chase sweeps for
    /// [`eigen_symmetric_tridiagonal`].
    pub sweeps: usize,
}

impl EigenDecomposition {
    /// The `k`-th eigenvector (column of [`Self::eigenvectors`]) as a `Vec`.
    pub fn eigenvector(&self, k: usize) -> Result<Vec<f64>> {
        self.eigenvectors.col(k)
    }

    /// Fraction of total variance captured by the top `k` eigenvalues.
    ///
    /// Negative eigenvalues (numerical noise around zero for rank-deficient
    /// inputs) are clamped to zero for this summary.
    pub fn variance_captured(&self, k: usize) -> f64 {
        let clamped: Vec<f64> = self.eigenvalues.iter().map(|&l| l.max(0.0)).collect();
        let total: f64 = clamped.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        clamped.iter().take(k).sum::<f64>() / total
    }

    /// Effective rank: number of eigenvalues above `tol * max_eigenvalue`.
    pub fn effective_rank(&self, tol: f64) -> usize {
        let max = self.eigenvalues.first().copied().unwrap_or(0.0).max(0.0);
        if max == 0.0 {
            return 0;
        }
        self.eigenvalues.iter().filter(|&&l| l > tol * max).count()
    }
}

/// Which pivot ordering a Jacobi iteration uses per sweep.
///
/// Both orderings converge to the same eigensystem; they differ in the
/// rotation sequence, so intermediate floating-point values (and thus the
/// final low-order bits) differ between the two. Whatever the choice, the
/// result is bit-identical for every thread count — the ordering decides
/// the arithmetic, the pool only schedules it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JacobiOrdering {
    /// Pick by dimension: serial cyclic below
    /// [`JACOBI_PARALLEL_MIN_DIM`], round-robin parallel ordering at or
    /// above it. This is the default and the only variant callers normally
    /// need.
    #[default]
    Auto,
    /// Force the classic serial cyclic sweep regardless of dimension.
    /// Used by the `jacobi_ordering` justification bench that pins the
    /// crossover point.
    Serial,
    /// Force the round-robin parallel ordering regardless of dimension.
    Parallel,
}

/// Options controlling the Jacobi iteration.
#[derive(Debug, Clone, Copy)]
pub struct JacobiOptions {
    /// Convergence threshold on the off-diagonal Frobenius norm, relative to
    /// the Frobenius norm of the input. Default `1e-14`.
    pub rel_tolerance: f64,
    /// Maximum number of sweeps before declaring non-convergence.
    /// Default 64 (classic Jacobi converges in < 15 sweeps for any
    /// reasonable matrix; 64 is a generous safety margin).
    pub max_sweeps: usize,
    /// Maximum tolerated asymmetry `max |a_ij - a_ji|` in the input, relative
    /// to its max absolute entry. Default `1e-9`. Inputs within tolerance are
    /// symmetrized as `(A + A^T) / 2` before iterating.
    pub symmetry_tolerance: f64,
    /// Sweep ordering selection. Default [`JacobiOrdering::Auto`].
    pub ordering: JacobiOrdering,
}

impl Default for JacobiOptions {
    fn default() -> Self {
        JacobiOptions {
            rel_tolerance: 1e-14,
            max_sweeps: 64,
            symmetry_tolerance: 1e-9,
            ordering: JacobiOrdering::Auto,
        }
    }
}

/// Computes the eigendecomposition of a symmetric matrix with default
/// [`JacobiOptions`].
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] for rectangular input.
/// * [`LinalgError::NotSymmetric`] when asymmetry exceeds tolerance.
/// * [`LinalgError::NonFinite`] when the input contains NaN or infinity.
/// * [`LinalgError::NoConvergence`] if the sweep budget is exhausted
///   (practically unreachable for finite symmetric input).
///
/// # Examples
///
/// ```
/// use odflow_linalg::{Matrix, eigen_symmetric};
///
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
/// let e = eigen_symmetric(&a).unwrap();
/// assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
/// assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
/// ```
pub fn eigen_symmetric(a: &Matrix) -> Result<EigenDecomposition> {
    eigen_symmetric_with(a, JacobiOptions::default())
}

/// Computes the eigendecomposition of a symmetric matrix with explicit
/// options. See [`eigen_symmetric`].
pub fn eigen_symmetric_with(a: &Matrix, opts: JacobiOptions) -> Result<EigenDecomposition> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { op: "eigen_symmetric", shape: a.shape() });
    }
    if !a.all_finite() {
        return Err(LinalgError::NonFinite { op: "eigen_symmetric" });
    }
    let n = a.nrows();
    if n == 0 {
        return Ok(EigenDecomposition {
            eigenvalues: vec![],
            eigenvectors: Matrix::zeros(0, 0),
            sweeps: 0,
        });
    }

    let scale = a.max_abs();
    let asym = a.max_asymmetry();
    if scale > 0.0 && asym > opts.symmetry_tolerance * scale {
        return Err(LinalgError::NotSymmetric { max_asymmetry: asym });
    }

    // Work on a symmetrized copy; tiny asymmetries from floating-point
    // accumulation in X^T X are averaged away.
    let mut w = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
    let mut v = Matrix::identity(n);

    let fro = w.frobenius_norm();
    let tol = if fro > 0.0 { opts.rel_tolerance * fro } else { 0.0 };

    // The sweep strategy is chosen from the dimension alone (never the
    // thread count), so a given matrix always takes the same arithmetic
    // path and ODFLOW_THREADS cannot change the result.
    let parallel_ordering = match opts.ordering {
        JacobiOrdering::Auto => n >= JACOBI_PARALLEL_MIN_DIM,
        JacobiOrdering::Serial => false,
        JacobiOrdering::Parallel => true,
    };

    // Rotation table reused across every round of every sweep: with the
    // persistent pool the per-round fan-out is cheap enough that this
    // per-round allocation was a measurable share of small-dimension
    // sweeps.
    let mut rotation_scratch: Vec<Rotation> = Vec::with_capacity(n.div_ceil(2));

    let mut sweeps = 0;
    while off_diagonal_norm(&w) > tol {
        if sweeps >= opts.max_sweeps {
            return Err(LinalgError::NoConvergence { op: "eigen_symmetric", iterations: sweeps });
        }
        if parallel_ordering {
            parallel_sweep(&mut w, &mut v, &mut rotation_scratch);
        } else {
            serial_sweep(&mut w, &mut v);
        }
        sweeps += 1;
    }

    // Extract eigenvalues from the (now nearly diagonal) working matrix and
    // sort eigenpairs by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| w[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("finite eigenvalues"));

    let eigenvalues: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let eigenvectors = v.select_cols(&order)?;

    Ok(EigenDecomposition { eigenvalues, eigenvectors, sweeps })
}

/// Computes the eigendecomposition of a symmetric matrix by Householder
/// tridiagonalization + implicit Wilkinson-shift QR — the direct-method
/// pipeline every dense LAPACK eigensolver uses, here with a blocked
/// `dsytrd`-style panel reduction (compact-WY back-transform, rank-2k
/// trailing update) and a `dsteqr`-style QR stage with batched rotation
/// replay.
///
/// Produces the same eigensystem as [`eigen_symmetric`] (to working
/// precision; low-order bits and eigenvector signs differ — the two
/// methods take entirely different arithmetic paths) at a fraction of the
/// flops: `O(n³)` once versus `O(n³)` *per Jacobi sweep*. At `p = 256`
/// this is the difference between ~370 ms and well under 100 ms, which is
/// why [`crate::EigenMethod::Auto`] prefers it from
/// [`crate::backend::AUTO_TRIDIAG_MIN_DIM`] upward. Like every kernel in
/// the workspace, results are bit-identical for every thread count.
///
/// # Errors
///
/// Same contract as [`eigen_symmetric`]: [`LinalgError::NotSquare`],
/// [`LinalgError::NotSymmetric`], [`LinalgError::NonFinite`], and
/// [`LinalgError::NoConvergence`] (practically unreachable).
///
/// # Examples
///
/// ```
/// use odflow_linalg::{eigen_symmetric_tridiagonal, Matrix};
///
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
/// let e = eigen_symmetric_tridiagonal(&a).unwrap();
/// assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
/// assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
/// ```
pub fn eigen_symmetric_tridiagonal(a: &Matrix) -> Result<EigenDecomposition> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { op: "eigen_symmetric_tridiagonal", shape: a.shape() });
    }
    if !a.all_finite() {
        return Err(LinalgError::NonFinite { op: "eigen_symmetric_tridiagonal" });
    }
    let n = a.nrows();
    if n == 0 {
        return Ok(EigenDecomposition {
            eigenvalues: vec![],
            eigenvectors: Matrix::zeros(0, 0),
            sweeps: 0,
        });
    }
    let scale = a.max_abs();
    let asym = a.max_asymmetry();
    let symmetry_tolerance = JacobiOptions::default().symmetry_tolerance;
    if scale > 0.0 && asym > symmetry_tolerance * scale {
        return Err(LinalgError::NotSymmetric { max_asymmetry: asym });
    }

    // Same symmetrized working copy as the Jacobi path: tiny asymmetries
    // from floating-point accumulation in X^T X are averaged away.
    let w = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
    let mut factor = crate::householder::tridiagonalize(w);
    let mut z = Matrix::identity(n);
    let sweeps = crate::tridiag::tridiag_qr(&mut factor.d, &mut factor.e, &mut z)?;
    let z = crate::householder::back_transform(z, &factor);

    // Sort eigenpairs by descending eigenvalue, exactly as Jacobi does.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| factor.d[j].partial_cmp(&factor.d[i]).expect("finite eigenvalues"));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| factor.d[i]).collect();
    let eigenvectors = z.select_cols(&order)?;
    Ok(EigenDecomposition { eigenvalues, eigenvectors, sweeps })
}

/// The dense-dispatch entry point: cyclic Jacobi below
/// [`crate::backend::AUTO_TRIDIAG_MIN_DIM`] (where its simplicity wins and
/// the paper-scale `p = 121` results stay byte-identical to the historical
/// path), blocked tridiagonal QR at or above it. The choice depends only
/// on the dimension, never the thread count.
///
/// # Errors
///
/// Same contract as [`eigen_symmetric`].
pub fn eigen_symmetric_auto(a: &Matrix) -> Result<EigenDecomposition> {
    if a.nrows() >= crate::backend::AUTO_TRIDIAG_MIN_DIM && a.is_square() {
        eigen_symmetric_tridiagonal(a)
    } else {
        eigen_symmetric(a)
    }
}

/// Smallest dimension at which the Jacobi iteration switches from the
/// serial cyclic ordering to the round-robin parallel ordering (under
/// [`JacobiOrdering::Auto`]). Below this, per-rotation work is too small to
/// amortize the phased update and the classic sweep (identical to the
/// original implementation) is used.
///
/// Re-tuned from 192 to 128 when the per-region thread spawn was replaced
/// by the persistent worker pool: per-round dispatch dropped from three
/// scoped spawn/join cycles to three queue pushes, and the `jacobi_ordering`
/// criterion bench (`cargo bench -p odflow_bench -- jacobi_ordering`) pins
/// the crossover — at p = 128 the phased row-contiguous update already beats
/// the strided serial rotation even on one thread, and the paper's p = 121
/// mesh stays safely on the byte-identical serial path.
pub const JACOBI_PARALLEL_MIN_DIM: usize = 128;

/// One Jacobi plane rotation in the `(p, q)` plane.
#[derive(Clone, Copy)]
struct Rotation {
    p: usize,
    q: usize,
    c: f64,
    s: f64,
}

/// Stable rotation coefficients annihilating `w[(p, q)]`
/// (Golub & Van Loan 8.5.2): `t = sign(theta) / (|theta| + sqrt(theta^2+1))`,
/// `theta = (aqq - app) / (2 apq)`. Returns `None` when the pivot is already
/// zero.
fn rotation_for(w: &Matrix, p: usize, q: usize) -> Option<Rotation> {
    let apq = w[(p, q)];
    if apq == 0.0 {
        return None;
    }
    let app = w[(p, p)];
    let aqq = w[(q, q)];
    let theta = (aqq - app) / (2.0 * apq);
    let t = if theta >= 0.0 {
        1.0 / (theta + (1.0 + theta * theta).sqrt())
    } else {
        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;
    Some(Rotation { p, q, c, s })
}

/// The classic cyclic sweep: pivots visited row by row, each rotation
/// applied two-sided before the next is computed.
fn serial_sweep(w: &mut Matrix, v: &mut Matrix) {
    let n = w.nrows();
    for p in 0..n - 1 {
        for q in p + 1..n {
            if let Some(rot) = rotation_for(w, p, q) {
                apply_rotation(w, rot.p, rot.q, rot.c, rot.s);
                rotate_eigenvectors(v, rot.p, rot.q, rot.c, rot.s);
            }
        }
    }
}

/// The `k`-th pair of round `round` in a round-robin (circle-method)
/// tournament over `m` players (`m` even): every unordered pair appears
/// exactly once across the `m - 1` rounds, and the `m / 2` pairs within one
/// round are disjoint.
fn tournament_pair(m: usize, round: usize, k: usize) -> (usize, usize) {
    debug_assert!(m.is_multiple_of(2));
    let i = if k == 0 { m - 1 } else { (round + k) % (m - 1) };
    let j = (round + m - 1 - k) % (m - 1);
    (i, j)
}

/// Rows per parallel block when applying a round's column rotations.
const JACOBI_ROW_BLOCK: usize = 64;

/// One sweep under the round-robin parallel ordering.
///
/// Per round the disjoint rotations `J = J_1 J_2 ...` are applied as
/// `W <- J^T (W J)` in two phases — column updates (each matrix row is
/// touched by every rotation but only in columns `p, q`, so rows
/// parallelize) then row updates (each rotation owns rows `p, q`
/// exclusively, so pairs parallelize) — and accumulated into `V <- V J`.
/// Coefficients are computed before any update from entries no rotation in
/// the round touches, so the result is independent of scheduling.
///
/// Each phase is one region on the persistent pool, so a round pays three
/// queue dispatches (not three thread spawn/join cycles — that overhead is
/// what kept [`JACOBI_PARALLEL_MIN_DIM`] at 192 before the pool became
/// persistent); the dominant win at moderate sizes is the row-contiguous
/// memory access of the phased update itself (~3x over the strided serial
/// rotation even single-threaded). The rotation table is caller-provided
/// scratch, cleared and refilled per round, so steady-state sweeps
/// allocate nothing.
fn parallel_sweep(w: &mut Matrix, v: &mut Matrix, rots: &mut Vec<Rotation>) {
    let n = w.nrows();
    let m = n + (n & 1); // round up to even; index n (if any) is the bye
    for round in 0..m - 1 {
        rots.clear();
        for k in 0..m / 2 {
            let (i, j) = tournament_pair(m, round, k);
            if i >= n || j >= n {
                continue; // bye in odd-dimension tournaments
            }
            if let Some(rot) = rotation_for(w, i.min(j), i.max(j)) {
                rots.push(rot);
            }
        }
        if rots.is_empty() {
            continue;
        }
        apply_column_rotations(w, rots);
        apply_row_rotations(w, rots);
        // The two-sided update annihilates the pivots modulo rounding;
        // zero them explicitly as the serial rotation does.
        for rot in rots.iter() {
            w[(rot.p, rot.q)] = 0.0;
            w[(rot.q, rot.p)] = 0.0;
        }
        apply_column_rotations(v, rots);
    }
}

/// `M <- M J` for a set of disjoint-plane rotations, parallel over row
/// blocks (each row is updated independently in columns `p, q`).
fn apply_column_rotations(m: &mut Matrix, rots: &[Rotation]) {
    let ncols = m.ncols();
    odflow_par::parallel_chunks(m.as_mut_slice(), JACOBI_ROW_BLOCK * ncols, |_, rows| {
        for row in rows.chunks_exact_mut(ncols) {
            for rot in rots {
                let a = row[rot.p];
                let b = row[rot.q];
                row[rot.p] = rot.c * a - rot.s * b;
                row[rot.q] = rot.s * a + rot.c * b;
            }
        }
    });
}

/// `M <- J^T M` for a set of disjoint-plane rotations: each rotation owns
/// rows `p` and `q` exclusively, so the pairs are processed in parallel.
fn apply_row_rotations(m: &mut Matrix, rots: &[Rotation]) {
    let ncols = m.ncols();
    if odflow_par::max_threads() == 1 {
        // Serial fast path: skip the per-call row-slot and task-tuple
        // vectors. Rotation planes satisfy `p < q`, so `split_at_mut` at
        // row `q` hands out both rows disjointly; the per-element
        // arithmetic below is the exact expression of the parallel path,
        // keeping the result bit-identical for every thread count.
        let data = m.as_mut_slice();
        for rot in rots {
            let (head, tail) = data.split_at_mut(rot.q * ncols);
            let row_p = &mut head[rot.p * ncols..rot.p * ncols + ncols];
            let row_q = &mut tail[..ncols];
            for (a_el, b_el) in row_p.iter_mut().zip(row_q.iter_mut()) {
                let a = *a_el;
                let b = *b_el;
                *a_el = rot.c * a - rot.s * b;
                *b_el = rot.s * a + rot.c * b;
            }
        }
        return;
    }
    let mut rows: Vec<Option<&mut [f64]>> = m.as_mut_slice().chunks_mut(ncols).map(Some).collect();
    let mut tasks: Vec<(f64, f64, &mut [f64], &mut [f64])> = rots
        .iter()
        .map(|rot| {
            let row_p = rows[rot.p].take().expect("rotation planes are disjoint");
            let row_q = rows[rot.q].take().expect("rotation planes are disjoint");
            (rot.c, rot.s, row_p, row_q)
        })
        .collect();
    odflow_par::parallel_chunks(&mut tasks, 8, |_, pairs| {
        for (c, s, row_p, row_q) in pairs.iter_mut() {
            for (a_el, b_el) in row_p.iter_mut().zip(row_q.iter_mut()) {
                let a = *a_el;
                let b = *b_el;
                *a_el = *c * a - *s * b;
                *b_el = *s * a + *c * b;
            }
        }
    });
}

/// Rows per parallel block in [`off_diagonal_norm`]; fixed so the block
/// reduction is deterministic.
const OFFDIAG_ROW_BLOCK: usize = 128;

/// Frobenius norm of the strictly off-diagonal part.
///
/// Large matrices sum per-row-block partials in parallel, combined in block
/// order; small ones keep the original serial double loop. The path depends
/// only on the dimension, never the thread count.
fn off_diagonal_norm(a: &Matrix) -> f64 {
    let n = a.nrows();
    if n >= JACOBI_PARALLEL_MIN_DIM {
        let data = a.as_slice();
        return odflow_par::map_reduce(
            n,
            OFFDIAG_ROW_BLOCK,
            |rows| {
                let mut s = 0.0;
                for i in rows {
                    let row = &data[i * n..(i + 1) * n];
                    for (j, x) in row.iter().enumerate() {
                        if j != i {
                            s += x * x;
                        }
                    }
                }
                s
            },
            |x, y| x + y,
        )
        .unwrap_or(0.0)
        .sqrt();
    }
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += a[(i, j)] * a[(i, j)];
            }
        }
    }
    s.sqrt()
}

/// Applies the two-sided Jacobi rotation `J^T W J` in the `(p, q)` plane.
fn apply_rotation(w: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = w.nrows();
    let app = w[(p, p)];
    let aqq = w[(q, q)];
    let apq = w[(p, q)];

    w[(p, p)] = c * c * app - 2.0 * s * c * apq + s * s * aqq;
    w[(q, q)] = s * s * app + 2.0 * s * c * apq + c * c * aqq;
    w[(p, q)] = 0.0;
    w[(q, p)] = 0.0;

    for i in 0..n {
        if i != p && i != q {
            let aip = w[(i, p)];
            let aiq = w[(i, q)];
            w[(i, p)] = c * aip - s * aiq;
            w[(p, i)] = w[(i, p)];
            w[(i, q)] = s * aip + c * aiq;
            w[(q, i)] = w[(i, q)];
        }
    }
}

/// Accumulates the rotation into the eigenvector matrix: `V <- V J`.
fn rotate_eigenvectors(v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = v.nrows();
    for i in 0..n {
        let vip = v[(i, p)];
        let viq = v[(i, q)];
        v[(i, p)] = c * vip - s * viq;
        v[(i, q)] = s * vip + c * viq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &EigenDecomposition) -> Matrix {
        // A = V diag(lambda) V^T
        let v = &e.eigenvectors;
        let d = Matrix::from_diag(&e.eigenvalues);
        v.matmul(&d).unwrap().matmul(&v.transpose()).unwrap()
    }

    #[test]
    fn two_by_two_known() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = eigen_symmetric(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
        // Eigenvector for lambda=3 is (1,1)/sqrt(2) up to sign.
        let v0 = e.eigenvector(0).unwrap();
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((v0[0] - v0[1]).abs() < 1e-12);
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let a = Matrix::from_diag(&[5.0, 3.0, 1.0]);
        let e = eigen_symmetric(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![5.0, 3.0, 1.0]);
        assert_eq!(e.sweeps, 0);
    }

    #[test]
    fn sorts_descending_even_with_negatives() {
        let a = Matrix::from_diag(&[-2.0, 7.0, 0.5]);
        let e = eigen_symmetric(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![7.0, 0.5, -2.0]);
    }

    #[test]
    fn reconstruction_3x3() {
        let a =
            Matrix::from_rows(&[vec![4.0, 1.0, 0.5], vec![1.0, 3.0, 0.25], vec![0.5, 0.25, 2.0]])
                .unwrap();
        let e = eigen_symmetric(&a).unwrap();
        assert!(reconstruct(&e).approx_eq(&a, 1e-10));
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = Matrix::from_fn(8, 8, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let e = eigen_symmetric(&a).unwrap();
        let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(8), 1e-10));
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a =
            Matrix::from_fn(6, 6, |i, j| ((i * j) as f64).sin() + if i == j { 3.0 } else { 0.0 });
        let sym = Matrix::from_fn(6, 6, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
        let e = eigen_symmetric(&sym).unwrap();
        let tr = sym.trace().unwrap();
        let sum: f64 = e.eigenvalues.iter().sum();
        assert!((tr - sum).abs() < 1e-9, "trace {tr} vs eigensum {sum}");
    }

    #[test]
    fn rank_deficient_low_rank() {
        // Rank-1: outer product vv^T, eigenvalues (||v||^2, 0, 0).
        let v = [1.0, 2.0, 3.0];
        let a = Matrix::from_fn(3, 3, |i, j| v[i] * v[j]);
        let e = eigen_symmetric(&a).unwrap();
        assert!((e.eigenvalues[0] - 14.0).abs() < 1e-10);
        assert!(e.eigenvalues[1].abs() < 1e-10);
        assert!(e.eigenvalues[2].abs() < 1e-10);
        assert_eq!(e.effective_rank(1e-9), 1);
    }

    #[test]
    fn variance_captured_monotone() {
        let a = Matrix::from_diag(&[4.0, 3.0, 2.0, 1.0]);
        let e = eigen_symmetric(&a).unwrap();
        assert!((e.variance_captured(1) - 0.4).abs() < 1e-12);
        assert!((e.variance_captured(4) - 1.0).abs() < 1e-12);
        assert!(e.variance_captured(2) > e.variance_captured(1));
        assert_eq!(e.variance_captured(0), 0.0);
    }

    #[test]
    fn rejects_rectangular_and_asymmetric() {
        assert!(matches!(
            eigen_symmetric(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        let a = Matrix::from_rows(&[vec![1.0, 5.0], vec![0.0, 1.0]]).unwrap();
        assert!(matches!(eigen_symmetric(&a), Err(LinalgError::NotSymmetric { .. })));
    }

    #[test]
    fn rejects_nonfinite() {
        let mut a = Matrix::identity(2);
        a[(0, 0)] = f64::NAN;
        assert!(matches!(eigen_symmetric(&a), Err(LinalgError::NonFinite { .. })));
    }

    #[test]
    fn empty_matrix_ok() {
        let e = eigen_symmetric(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.eigenvalues.is_empty());
    }

    #[test]
    fn tolerates_tiny_asymmetry() {
        // Asymmetry at 1e-12 relative is well within the default tolerance.
        let mut a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        a[(0, 1)] += 1e-13;
        let e = eigen_symmetric(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn tournament_covers_every_pair_once() {
        for &m in &[4usize, 8, 10] {
            let mut seen = std::collections::HashSet::new();
            for round in 0..m - 1 {
                let mut in_round = std::collections::HashSet::new();
                for k in 0..m / 2 {
                    let (i, j) = tournament_pair(m, round, k);
                    assert_ne!(i, j);
                    assert!(in_round.insert(i), "index {i} repeated in round {round}");
                    assert!(in_round.insert(j), "index {j} repeated in round {round}");
                    seen.insert((i.min(j), i.max(j)));
                }
            }
            assert_eq!(seen.len(), m * (m - 1) / 2, "m={m}");
        }
    }

    #[test]
    fn parallel_ordering_reconstructs_and_stays_orthonormal() {
        // Large enough to take the round-robin parallel path.
        let n = JACOBI_PARALLEL_MIN_DIM;
        let b = Matrix::from_fn(n + 40, n, |i, j| {
            (((i * 31 + j * 17) % 257) as f64 / 257.0 - 0.5) + if i == j { 0.5 } else { 0.0 }
        });
        let a = b.transpose().matmul(&b).unwrap();
        let e = eigen_symmetric(&a).unwrap();
        let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(n), 1e-8), "V^T V != I");
        assert!(reconstruct(&e).approx_eq(&a, 1e-6 * a.max_abs()), "A != V L V^T");
        for win in e.eigenvalues.windows(2) {
            assert!(win[0] >= win[1] - 1e-9);
        }
    }

    #[test]
    fn parallel_ordering_is_thread_count_invariant() {
        let n = JACOBI_PARALLEL_MIN_DIM;
        let a = Matrix::from_fn(n, n, |i, j| {
            let lo = i.min(j) as f64;
            let hi = i.max(j) as f64;
            (1.0 + lo) / (2.0 + hi) + if i == j { 3.0 } else { 0.0 }
        });
        let serial = odflow_par::with_thread_limit(1, || eigen_symmetric(&a).unwrap());
        let wide = odflow_par::with_thread_limit(8, || eigen_symmetric(&a).unwrap());
        assert_eq!(serial.eigenvalues, wide.eigenvalues, "eigenvalues must be bit-identical");
        assert_eq!(
            serial.eigenvectors.as_slice(),
            wide.eigenvectors.as_slice(),
            "eigenvectors must be bit-identical"
        );
    }

    #[test]
    fn forced_orderings_agree_on_the_same_eigensystem() {
        // Serial cyclic and round-robin parallel orderings take different
        // rotation sequences but must land on the same eigensystem; the
        // `ordering` override exists so the justification bench can pin
        // both paths at one dimension.
        let n = 48;
        let b = Matrix::from_fn(n + 8, n, |i, j| {
            (((i * 29 + j * 13) % 127) as f64 / 127.0 - 0.5) + if i == j { 0.4 } else { 0.0 }
        });
        let a = b.transpose().matmul(&b).unwrap();
        let forced = |ordering| {
            eigen_symmetric_with(&a, JacobiOptions { ordering, ..JacobiOptions::default() })
                .unwrap()
        };
        let serial = forced(JacobiOrdering::Serial);
        let parallel = forced(JacobiOrdering::Parallel);
        for (s, p) in serial.eigenvalues.iter().zip(&parallel.eigenvalues) {
            assert!((s - p).abs() <= 1e-8 * (1.0 + s.abs()), "eigenvalue {s} vs {p}");
        }
        // And Auto at this size matches the serial ordering bit for bit —
        // n = 48 is below the crossover.
        let auto = forced(JacobiOrdering::Auto);
        assert_eq!(auto.eigenvalues, serial.eigenvalues);
        assert_eq!(auto.eigenvectors.as_slice(), serial.eigenvectors.as_slice());
    }

    #[test]
    fn tridiagonal_matches_jacobi_eigenvalues() {
        for &n in &[3usize, 8, 33, 72] {
            let b = Matrix::from_fn(n + 9, n, |i, j| {
                (((i * 29 + j * 13) % 127) as f64 / 127.0 - 0.5) + if i == j { 0.4 } else { 0.0 }
            });
            let a = b.transpose().matmul(&b).unwrap();
            let jac = eigen_symmetric(&a).unwrap();
            let tri = eigen_symmetric_tridiagonal(&a).unwrap();
            let scale = jac.eigenvalues[0].abs().max(1.0);
            for (j, t) in jac.eigenvalues.iter().zip(&tri.eigenvalues) {
                assert!((j - t).abs() <= 1e-9 * scale, "n={n}: {j} vs {t}");
            }
        }
    }

    #[test]
    fn tridiagonal_reconstructs_and_is_orthonormal() {
        let n = 96; // crosses several Householder panels
        let a = Matrix::from_fn(n, n, |i, j| {
            let lo = i.min(j) as f64;
            let hi = i.max(j) as f64;
            (1.0 + lo) / (2.0 + hi) + if i == j { 3.0 } else { 0.0 }
        });
        let e = eigen_symmetric_tridiagonal(&a).unwrap();
        let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(n), 1e-9), "V^T V != I");
        assert!(reconstruct(&e).approx_eq(&a, 1e-8 * a.max_abs()), "A != V L V^T");
        for win in e.eigenvalues.windows(2) {
            assert!(win[0] >= win[1] - 1e-9, "not descending");
        }
    }

    #[test]
    fn tridiagonal_is_thread_count_invariant() {
        let n = 80;
        let a = Matrix::from_fn(n, n, |i, j| {
            (((i.min(j) * 31 + i.max(j) * 17) % 101) as f64) / 101.0
                + if i == j { 2.0 } else { 0.0 }
        });
        let serial = odflow_par::with_thread_limit(1, || eigen_symmetric_tridiagonal(&a).unwrap());
        for &threads in &[4usize, 64] {
            let par =
                odflow_par::with_thread_limit(threads, || eigen_symmetric_tridiagonal(&a).unwrap());
            assert_eq!(par.eigenvalues, serial.eigenvalues, "threads={threads}");
            assert_eq!(
                par.eigenvectors.as_slice(),
                serial.eigenvectors.as_slice(),
                "threads={threads}"
            );
            assert_eq!(par.sweeps, serial.sweeps, "threads={threads}");
        }
    }

    #[test]
    fn tridiagonal_input_validation_matches_jacobi() {
        assert!(matches!(
            eigen_symmetric_tridiagonal(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        let asym = Matrix::from_rows(&[vec![1.0, 5.0], vec![0.0, 1.0]]).unwrap();
        assert!(matches!(
            eigen_symmetric_tridiagonal(&asym),
            Err(LinalgError::NotSymmetric { .. })
        ));
        let mut nan = Matrix::identity(2);
        nan[(0, 0)] = f64::NAN;
        assert!(matches!(eigen_symmetric_tridiagonal(&nan), Err(LinalgError::NonFinite { .. })));
        let empty = eigen_symmetric_tridiagonal(&Matrix::zeros(0, 0)).unwrap();
        assert!(empty.eigenvalues.is_empty());
    }

    #[test]
    fn tridiagonal_small_matrices_exact() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = eigen_symmetric_tridiagonal(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
        let d = Matrix::from_diag(&[-2.0, 7.0, 0.5]);
        let e = eigen_symmetric_tridiagonal(&d).unwrap();
        assert_eq!(e.eigenvalues, vec![7.0, 0.5, -2.0]);
    }

    #[test]
    fn auto_dispatch_picks_by_dimension() {
        // Below the crossover Auto is bit-identical to Jacobi.
        let n = 24;
        let a = Matrix::from_fn(n, n, |i, j| {
            1.0 / (1.0 + (i as f64 - j as f64).abs()) + if i == j { 1.0 } else { 0.0 }
        });
        let auto = eigen_symmetric_auto(&a).unwrap();
        let jac = eigen_symmetric(&a).unwrap();
        assert_eq!(auto.eigenvalues, jac.eigenvalues);
        assert_eq!(auto.eigenvectors.as_slice(), jac.eigenvectors.as_slice());
        // At the crossover Auto is bit-identical to the tridiagonal path.
        let n = crate::backend::AUTO_TRIDIAG_MIN_DIM;
        let a = Matrix::from_fn(n, n, |i, j| {
            (((i.min(j) * 7 + i.max(j) * 3) % 41) as f64) / 41.0 + if i == j { 2.0 } else { 0.0 }
        });
        let auto = eigen_symmetric_auto(&a).unwrap();
        let tri = eigen_symmetric_tridiagonal(&a).unwrap();
        assert_eq!(auto.eigenvalues, tri.eigenvalues);
        assert_eq!(auto.eigenvectors.as_slice(), tri.eigenvectors.as_slice());
    }

    #[test]
    fn moderately_sized_psd_matrix() {
        // Covariance-like matrix: A = B^T B is PSD; all eigenvalues >= 0.
        let b = Matrix::from_fn(40, 20, |i, j| ((i * 31 + j * 17) % 101) as f64 / 101.0 - 0.5);
        let a = b.transpose().matmul(&b).unwrap();
        let e = eigen_symmetric(&a).unwrap();
        for &l in &e.eigenvalues {
            assert!(l > -1e-9, "PSD eigenvalue went negative: {l}");
        }
        // Eigenvalues descending.
        for w in e.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(reconstruct(&e).approx_eq(&a, 1e-8));
    }
}
