//! Dense row-major matrix of `f64`.
//!
//! [`Matrix`] is the workhorse container of the workspace: the OD-flow
//! traffic timeseries `X` (n timebins x p OD pairs) from the paper is stored
//! as one `Matrix` per traffic type. The type deliberately stays simple —
//! contiguous `Vec<f64>` storage, explicit shape checks, no views or
//! expression templates — but the hot kernels (notably [`Matrix::matmul`])
//! are blocked for cache reuse and parallelized over row blocks via
//! [`odflow_par`], with accumulation orders fixed so results do not depend
//! on the thread count.

use crate::error::{LinalgError, Result};

/// A dense, row-major matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use odflow_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(m.shape(), (2, 2));
/// assert_eq!(m[(1, 0)], 3.0);
/// let t = m.transpose();
/// assert_eq!(t[(0, 1)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// Returns [`LinalgError::Empty`] for an empty slice and
    /// [`LinalgError::ShapeMismatch`] if row lengths are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::Empty { op: "from_rows" });
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::ShapeMismatch {
                    op: "from_rows",
                    lhs: (i, cols),
                    rhs: (i, r.len()),
                });
            }
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix { rows: rows.len(), cols, data })
    }

    /// Creates a column vector (shape `n x 1`) from a slice.
    pub fn col_vector(v: &[f64]) -> Self {
        Matrix { rows: v.len(), cols: 1, data: v.to_vec() }
    }

    /// Creates a diagonal matrix from a slice of diagonal entries.
    pub fn from_diag(d: &[f64]) -> Self {
        let mut m = Matrix::zeros(d.len(), d.len());
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` if the matrix has zero rows or zero columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix and return its row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Bounds-checked element access.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i < self.rows && j < self.cols {
            Some(self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Borrow row `i` as a slice.
    ///
    /// Returns [`LinalgError::OutOfBounds`] if `i >= nrows()`.
    pub fn row(&self, i: usize) -> Result<&[f64]> {
        if i >= self.rows {
            return Err(LinalgError::OutOfBounds { op: "row", index: i, bound: self.rows });
        }
        Ok(&self.data[i * self.cols..(i + 1) * self.cols])
    }

    /// Mutably borrow row `i` as a slice.
    pub fn row_mut(&mut self, i: usize) -> Result<&mut [f64]> {
        if i >= self.rows {
            return Err(LinalgError::OutOfBounds { op: "row_mut", index: i, bound: self.rows });
        }
        Ok(&mut self.data[i * self.cols..(i + 1) * self.cols])
    }

    /// Copy column `j` into a new `Vec`.
    ///
    /// Returns [`LinalgError::OutOfBounds`] if `j >= ncols()`.
    pub fn col(&self, j: usize) -> Result<Vec<f64>> {
        if j >= self.cols {
            return Err(LinalgError::OutOfBounds { op: "col", index: j, bound: self.cols });
        }
        Ok((0..self.rows).map(|i| self.data[i * self.cols + j]).collect())
    }

    /// Set column `j` from a slice of length `nrows()`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) -> Result<()> {
        if j >= self.cols {
            return Err(LinalgError::OutOfBounds { op: "set_col", index: j, bound: self.cols });
        }
        if v.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "set_col",
                lhs: (self.rows, 1),
                rhs: (v.len(), 1),
            });
        }
        for (i, &x) in v.iter().enumerate() {
            self.data[i * self.cols + j] = x;
        }
        Ok(())
    }

    /// Iterate over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose of this matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// Blocked i-k-j kernel: output rows are computed in independent row
    /// blocks (parallelized across the persistent [`odflow_par`] pool) and
    /// the k loop is tiled so the active slice of `rhs` stays
    /// cache-resident. Inside a block, a 2-row × 4-k register-tiled
    /// micro-kernel (`matmul_tile_2x4`) runs fixed-width,
    /// autovectorization-friendly inner loops; every output element still
    /// accumulates in ascending-k order, so results are bit-identical to
    /// the plain loop for every thread count. Returns
    /// [`LinalgError::ShapeMismatch`] when `self.ncols() != rhs.nrows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (n, inner, m) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(n, m);
        if n == 0 || inner == 0 || m == 0 {
            return Ok(out);
        }
        // k-tiling re-walks each output row once per tile, so it only pays
        // when rhs is too big to stay cache-resident across a full k pass.
        // Per-element accumulation stays in ascending-k order either way, so
        // the tile choice never changes results.
        let kb = if inner * m <= (1 << 19) { inner } else { 64 };
        // Row block: small matrices run in one inline chunk (pooled
        // dispatch is cheap but not free); the split affects scheduling
        // only, never accumulation order.
        let flops = n * inner * m;
        let row_block = if flops < (1 << 20) { n } else { 16 };
        let a = &self.data;
        let b = &rhs.data;
        odflow_par::parallel_chunks(&mut out.data, row_block * m, |blk, out_rows| {
            let i0 = blk * row_block;
            for k0 in (0..inner).step_by(kb) {
                let k1 = (k0 + kb).min(inner);
                // Row pairs through the register-tiled micro-kernel; a
                // trailing odd row takes the single-row kernel.
                let mut pairs = out_rows.chunks_exact_mut(2 * m);
                let mut i = i0;
                for pair in &mut pairs {
                    let (out0, out1) = pair.split_at_mut(m);
                    let a0 = &a[i * inner..(i + 1) * inner];
                    let a1 = &a[(i + 1) * inner..(i + 2) * inner];
                    matmul_tile_2x4(a0, a1, b, out0, out1, m, k0, k1);
                    i += 2;
                }
                let tail = pairs.into_remainder();
                if !tail.is_empty() {
                    let a_row = &a[i * inner..(i + 1) * inner];
                    matmul_tile_1x4(a_row, b, tail, m, k0, k1);
                }
            }
        });
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(self.rows_iter().map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum()).collect())
    }

    /// Symmetric matrix-vector product `self * v` through the unrolled
    /// [`crate::vecops::dot4`] row kernel, fanned out over row blocks on
    /// the persistent [`odflow_par`] pool.
    ///
    /// The matrix must be square and is read full-row (both triangles), so
    /// callers keep it explicitly symmetric — exactly how the blocked
    /// Householder tridiagonalization maintains its working matrix. Each
    /// output element is one `dot4` whose summation order depends only on
    /// the dimension, so results are bit-identical for every thread count.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] for rectangular input,
    /// [`LinalgError::ShapeMismatch`] when `v.len() != self.ncols()`.
    pub fn symv(&self, v: &[f64]) -> Result<Vec<f64>> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { op: "symv", shape: self.shape() });
        }
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "symv",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(symv_block(&self.data, self.cols, 0, v))
    }

    /// Vector-matrix product `v^T * self`, returned as a plain vector.
    pub fn vecmat(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.rows != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "vecmat",
                lhs: (1, v.len()),
                rhs: self.shape(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (o, &r) in out.iter_mut().zip(row) {
                *o += vi * r;
            }
        }
        Ok(out)
    }

    /// Element-wise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise product (Hadamard product).
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch { op, lhs: self.shape(), rhs: rhs.shape() });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Multiply every element by a scalar, in place.
    pub fn scale_mut(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Returns a copy of this matrix multiplied by scalar `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Apply `f` to every element, in place.
    pub fn map_mut(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Frobenius norm: `sqrt(sum of squared entries)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry. Returns 0.0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Trace (sum of diagonal entries).
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular matrices.
    pub fn trace(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { op: "trace", shape: self.shape() });
        }
        Ok((0..self.rows).map(|i| self.data[i * self.cols + i]).sum())
    }

    /// Extract a sub-matrix of the given column indices, preserving order.
    pub fn select_cols(&self, indices: &[usize]) -> Result<Matrix> {
        for &j in indices {
            if j >= self.cols {
                return Err(LinalgError::OutOfBounds {
                    op: "select_cols",
                    index: j,
                    bound: self.cols,
                });
            }
        }
        let mut out = Matrix::zeros(self.rows, indices.len());
        for i in 0..self.rows {
            for (jj, &j) in indices.iter().enumerate() {
                out.data[i * indices.len() + jj] = self.data[i * self.cols + j];
            }
        }
        Ok(out)
    }

    /// Extract a sub-matrix of the given row indices, preserving order.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Matrix> {
        for &i in indices {
            if i >= self.rows {
                return Err(LinalgError::OutOfBounds {
                    op: "select_rows",
                    index: i,
                    bound: self.rows,
                });
            }
        }
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (ii, &i) in indices.iter().enumerate() {
            out.data[ii * self.cols..(ii + 1) * self.cols]
                .copy_from_slice(&self.data[i * self.cols..(i + 1) * self.cols]);
        }
        Ok(out)
    }

    /// `true` if the matrix is symmetric to within `tol` (absolute).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.data[i * self.cols + j] - self.data[j * self.cols + i]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum absolute asymmetry `max |a_ij - a_ji|`; 0.0 for non-square.
    pub fn max_asymmetry(&self) -> f64 {
        if !self.is_square() {
            return 0.0;
        }
        let mut m = 0.0_f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                m = m.max((self.data[i * self.cols + j] - self.data[j * self.cols + i]).abs());
            }
        }
        m
    }

    /// `true` if all entries are finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Approximate equality: every element within `tol` (absolute).
    pub fn approx_eq(&self, rhs: &Matrix, tol: f64) -> bool {
        self.shape() == rhs.shape()
            && self.data.iter().zip(&rhs.data).all(|(a, b)| (a - b).abs() <= tol)
    }
}

/// 2-row × 4-k register-tiled matmul micro-kernel over one k tile
/// `[k0, k1)`: `out0 += a0[k] * b[k, :]` and `out1 += a1[k] * b[k, :]`.
///
/// Four consecutive k's are folded per pass over the output rows, so the
/// row traffic (load + store per element) is paid once per four updates
/// and each `b` row load is shared by both output rows. The adds for one
/// output element are sequenced in ascending-k order — `(((o + a·b₀) +
/// a·b₁) + a·b₂) + a·b₃` — exactly the order the plain one-k-at-a-time
/// loop produces, so the unroll never changes a bit of the result. The
/// fixed-width zip chain keeps the inner loop free of bounds checks for
/// the autovectorizer.
#[allow(clippy::too_many_arguments)]
fn matmul_tile_2x4(
    a0: &[f64],
    a1: &[f64],
    b: &[f64],
    out0: &mut [f64],
    out1: &mut [f64],
    m: usize,
    k0: usize,
    k1: usize,
) {
    let mut k = k0;
    while k + 4 <= k1 {
        let (a00, a01, a02, a03) = (a0[k], a0[k + 1], a0[k + 2], a0[k + 3]);
        let (a10, a11, a12, a13) = (a1[k], a1[k + 1], a1[k + 2], a1[k + 3]);
        let b0 = &b[k * m..(k + 1) * m];
        let b1 = &b[(k + 1) * m..(k + 2) * m];
        let b2 = &b[(k + 2) * m..(k + 3) * m];
        let b3 = &b[(k + 3) * m..(k + 4) * m];
        let rows = out0.iter_mut().zip(out1.iter_mut());
        let cols = b0.iter().zip(b1).zip(b2).zip(b3);
        for ((o0, o1), (((&b0j, &b1j), &b2j), &b3j)) in rows.zip(cols) {
            let mut acc0 = *o0;
            acc0 += a00 * b0j;
            acc0 += a01 * b1j;
            acc0 += a02 * b2j;
            acc0 += a03 * b3j;
            *o0 = acc0;
            let mut acc1 = *o1;
            acc1 += a10 * b0j;
            acc1 += a11 * b1j;
            acc1 += a12 * b2j;
            acc1 += a13 * b3j;
            *o1 = acc1;
        }
        k += 4;
    }
    // k remainder (tile length not a multiple of 4): one k at a time, still
    // ascending, still sharing the b row across both output rows.
    while k < k1 {
        let (a0k, a1k) = (a0[k], a1[k]);
        let b_row = &b[k * m..(k + 1) * m];
        for ((o0, o1), &bkj) in out0.iter_mut().zip(out1.iter_mut()).zip(b_row) {
            *o0 += a0k * bkj;
            *o1 += a1k * bkj;
        }
        k += 1;
    }
}

/// Single-row variant of `matmul_tile_2x4` for the trailing odd output row
/// of a block. Same ascending-k accumulation order.
fn matmul_tile_1x4(a_row: &[f64], b: &[f64], out: &mut [f64], m: usize, k0: usize, k1: usize) {
    let mut k = k0;
    while k + 4 <= k1 {
        let (ak0, ak1, ak2, ak3) = (a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]);
        let b0 = &b[k * m..(k + 1) * m];
        let b1 = &b[(k + 1) * m..(k + 2) * m];
        let b2 = &b[(k + 2) * m..(k + 3) * m];
        let b3 = &b[(k + 3) * m..(k + 4) * m];
        let cols = b0.iter().zip(b1).zip(b2).zip(b3);
        for (o, (((&b0j, &b1j), &b2j), &b3j)) in out.iter_mut().zip(cols) {
            let mut acc = *o;
            acc += ak0 * b0j;
            acc += ak1 * b1j;
            acc += ak2 * b2j;
            acc += ak3 * b3j;
            *o = acc;
        }
        k += 4;
    }
    while k < k1 {
        let ak = a_row[k];
        let b_row = &b[k * m..(k + 1) * m];
        for (o, &bkj) in out.iter_mut().zip(b_row) {
            *o += ak * bkj;
        }
        k += 1;
    }
}

/// Rows per parallel task in [`symv_block`]; fixed so the decomposition —
/// and therefore the result — depends only on the problem size.
const SYMV_ROW_BLOCK: usize = 64;

/// Trailing-block symmetric matvec: for an `n x n` row-major `data` and a
/// vector `v` of length `n - lo`, returns `y[i - lo] = data[i, lo..n] · v`
/// for `i in lo..n`.
///
/// This is the workhorse of the blocked Householder panel (`w = A v` over
/// the not-yet-reduced trailing block, addressed in place — no submatrix
/// copies). Rows fan out over the pool in [`SYMV_ROW_BLOCK`] blocks and
/// each row is one [`crate::vecops::dot4`], so the arithmetic per output
/// element is a pure function of `(n, lo)` — bit-identical for every
/// thread count.
pub(crate) fn symv_block(data: &[f64], n: usize, lo: usize, v: &[f64]) -> Vec<f64> {
    let m = n - lo;
    debug_assert_eq!(v.len(), m);
    let per_row = odflow_par::map_chunks(m, SYMV_ROW_BLOCK, |rows| {
        let mut out = Vec::with_capacity(rows.len());
        for r in rows {
            let i = lo + r;
            out.push(crate::vecops::dot4(&data[i * n + lo..(i + 1) * n], v));
        }
        out
    });
    let mut y = Vec::with_capacity(m);
    for block in per_row {
        y.extend_from_slice(&block);
    }
    y
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "matrix index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "matrix index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl std::fmt::Display for Matrix {
    /// Compact display used in error messages and examples; large matrices
    /// are elided to their corners.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        const MAX: usize = 6;
        for i in 0..self.rows.min(MAX) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(MAX) {
                write!(f, "{:>12.5e} ", self.data[i * self.cols + j])?;
            }
            if self.cols > MAX {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > MAX {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap()
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert!(!m.is_empty());
        assert!(Matrix::zeros(0, 4).is_empty());
    }

    #[test]
    fn identity_diagonal() {
        let i3 = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i3[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_layout() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let e = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
        assert!(matches!(e, Err(LinalgError::ShapeMismatch { .. })));
        assert!(matches!(Matrix::from_rows(&[]), Err(LinalgError::Empty { .. })));
    }

    #[test]
    fn row_col_access() {
        let m = m22();
        assert_eq!(m.row(0).unwrap(), &[1.0, 2.0]);
        assert_eq!(m.col(1).unwrap(), vec![2.0, 4.0]);
        assert!(m.row(2).is_err());
        assert!(m.col(2).is_err());
        assert_eq!(m.get(1, 1), Some(4.0));
        assert_eq!(m.get(2, 0), None);
    }

    #[test]
    fn set_col_roundtrip() {
        let mut m = Matrix::zeros(3, 2);
        m.set_col(1, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.col(1).unwrap(), vec![1.0, 2.0, 3.0]);
        assert!(m.set_col(5, &[0.0; 3]).is_err());
        assert!(m.set_col(0, &[0.0; 2]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j * 3) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t.transpose(), m);
        assert_eq!(m[(2, 4)], t[(4, 2)]);
    }

    #[test]
    fn matmul_known() {
        let a = m22();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(4, 4, |i, j| (i + j) as f64 + 0.25);
        let i4 = Matrix::identity(4);
        assert!(a.matmul(&i4).unwrap().approx_eq(&a, 1e-15));
        assert!(i4.matmul(&a).unwrap().approx_eq(&a, 1e-15));
    }

    #[test]
    fn matmul_unrolled_matches_naive_bitwise() {
        // The 2x4 register tile must reproduce the plain ascending-k
        // triple loop bit for bit, across odd/even row counts and k
        // remainders 0..3, under any thread limit.
        for &(n, inner, m) in
            &[(1usize, 1usize, 1usize), (2, 4, 3), (3, 5, 2), (7, 9, 11), (16, 13, 6), (33, 66, 15)]
        {
            let a = Matrix::from_fn(n, inner, |i, j| ((i * 37 + j * 11) % 97) as f64 / 97.0 - 0.31);
            let b = Matrix::from_fn(inner, m, |i, j| ((i * 23 + j * 41) % 89) as f64 / 89.0 + 0.07);
            let mut naive = Matrix::zeros(n, m);
            for i in 0..n {
                for k in 0..inner {
                    let aik = a[(i, k)];
                    for j in 0..m {
                        naive[(i, j)] += aik * b[(k, j)];
                    }
                }
            }
            for threads in [1usize, 4] {
                let got = odflow_par::with_thread_limit(threads, || a.matmul(&b).unwrap());
                assert_eq!(
                    got.as_slice(),
                    naive.as_slice(),
                    "n={n} inner={inner} m={m} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(LinalgError::ShapeMismatch { .. })));
    }

    #[test]
    fn matvec_vecmat() {
        let a = m22();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(a.vecmat(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.vecmat(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn symv_matches_matvec_on_symmetric_input() {
        let n = 70; // spans two SYMV_ROW_BLOCK panels
        let a = Matrix::from_fn(n, n, |i, j| {
            let (lo, hi) = (i.min(j), i.max(j));
            ((lo * 7 + hi * 3) % 17) as f64 - 8.0
        });
        let v: Vec<f64> = (0..n).map(|i| ((i * 11) % 5) as f64 - 2.0).collect();
        let fast = a.symv(&v).unwrap();
        let reference = a.matvec(&v).unwrap();
        // Not bit-identical (dot4 vs dot accumulation order) but tight.
        let scale: f64 = reference.iter().map(|x| x.abs()).fold(1.0, f64::max);
        for (f, r) in fast.iter().zip(&reference) {
            assert!((f - r).abs() <= 1e-12 * scale, "{f} vs {r}");
        }
    }

    #[test]
    fn symv_is_thread_count_invariant() {
        let n = 130;
        let a = Matrix::from_fn(n, n, |i, j| 1.0 / ((i + j + 1) as f64));
        let v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        let serial = odflow_par::with_thread_limit(1, || a.symv(&v).unwrap());
        for &threads in &[4usize, 64] {
            let par = odflow_par::with_thread_limit(threads, || a.symv(&v).unwrap());
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn symv_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.symv(&[1.0, 2.0, 3.0]), Err(LinalgError::NotSquare { .. })));
        let b = Matrix::identity(3);
        assert!(matches!(b.symv(&[1.0, 2.0]), Err(LinalgError::ShapeMismatch { .. })));
    }

    #[test]
    fn elementwise_ops() {
        let a = m22();
        let b = Matrix::filled(2, 2, 1.0);
        assert_eq!(a.add(&b).unwrap()[(0, 0)], 2.0);
        assert_eq!(a.sub(&b).unwrap()[(1, 1)], 3.0);
        assert_eq!(a.hadamard(&a).unwrap()[(1, 0)], 9.0);
        assert!(a.add(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn scale_and_map() {
        let mut a = m22();
        a.scale_mut(2.0);
        assert_eq!(a[(1, 1)], 8.0);
        a.map_mut(|x| x / 2.0);
        assert_eq!(a, m22());
        assert_eq!(m22().scaled(0.0).frobenius_norm(), 0.0);
    }

    #[test]
    fn frobenius_norm_known() {
        // ||[[3,4],[0,0]]||_F = 5
        let m = Matrix::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn trace_square_only() {
        assert_eq!(m22().trace().unwrap(), 5.0);
        assert!(Matrix::zeros(2, 3).trace().is_err());
    }

    #[test]
    fn select_cols_rows() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let c = m.select_cols(&[3, 0]).unwrap();
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c[(1, 0)], 7.0);
        assert_eq!(c[(1, 1)], 4.0);
        let r = m.select_rows(&[2]).unwrap();
        assert_eq!(r.row(0).unwrap(), &[8.0, 9.0, 10.0, 11.0]);
        assert!(m.select_cols(&[4]).is_err());
        assert!(m.select_rows(&[9]).is_err());
    }

    #[test]
    fn symmetry_checks() {
        let s = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        assert!(s.is_symmetric(0.0));
        assert_eq!(s.max_asymmetry(), 0.0);
        let a = m22();
        assert!(!a.is_symmetric(0.5));
        assert_eq!(a.max_asymmetry(), 1.0);
        assert!(!Matrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn finiteness() {
        let mut m = m22();
        assert!(m.all_finite());
        m[(0, 0)] = f64::NAN;
        assert!(!m.all_finite());
    }

    #[test]
    fn display_does_not_panic() {
        let big = Matrix::zeros(10, 10);
        let s = format!("{big}");
        assert!(s.contains("Matrix 10x10"));
        assert!(s.contains("..."));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_panics_out_of_bounds() {
        let m = m22();
        let _ = m[(2, 0)];
    }

    #[test]
    fn col_vector_and_diag() {
        let v = Matrix::col_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(v.shape(), (3, 1));
        let d = Matrix::from_diag(&[1.0, 2.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn max_abs_value() {
        let m = Matrix::from_rows(&[vec![-7.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.max_abs(), 7.0);
        assert_eq!(Matrix::zeros(0, 0).max_abs(), 0.0);
    }
}
