//! Free functions on `&[f64]` vectors.
//!
//! The subspace method spends most of its time on vector-level operations —
//! projecting the per-timebin traffic state vector `x` onto the normal and
//! anomalous subspaces and computing squared norms. These helpers keep that
//! code allocation-free and obvious.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length (programming error, not data error).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean norm `||v||^2`.
///
/// This is the paper's detection statistic applied to the residual vector:
/// the squared prediction error is `||x~||^2`.
#[inline]
pub fn norm_sq(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum()
}

/// Euclidean norm `||v||`.
#[inline]
pub fn norm(v: &[f64]) -> f64 {
    norm_sq(v).sqrt()
}

/// Four-lane unrolled dot product: the f64x4-style kernel behind the
/// tridiagonal eigensolver's `symv` and panel reductions.
///
/// Elements are split round-robin over four independent accumulators
/// (`k`, `k+1`, `k+2`, `k+3` per step) that are combined as
/// `(a0 + a1) + (a2 + a3)` before the tail is added in ascending order.
/// The summation order is **fixed by the slice length alone** — never by
/// the thread count — so every caller gets bit-identical results; it is
/// *not* the same order as [`dot`], so the two are not interchangeable
/// mid-algorithm.
///
/// # Panics
///
/// Panics if the slices differ in length (programming error, not data error).
#[inline]
pub fn dot4(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot4: length mismatch {} vs {}", a.len(), b.len());
    let mut acc0 = 0.0;
    let mut acc1 = 0.0;
    let mut acc2 = 0.0;
    let mut acc3 = 0.0;
    let mut quads_a = a.chunks_exact(4);
    let mut quads_b = b.chunks_exact(4);
    for (qa, qb) in (&mut quads_a).zip(&mut quads_b) {
        acc0 += qa[0] * qb[0];
        acc1 += qa[1] * qb[1];
        acc2 += qa[2] * qb[2];
        acc3 += qa[3] * qb[3];
    }
    let mut acc = (acc0 + acc1) + (acc2 + acc3);
    for (x, y) in quads_a.remainder().iter().zip(quads_b.remainder()) {
        acc += x * y;
    }
    acc
}

/// Fused two-term update `out += alpha * x + beta * y` in a single pass.
///
/// The rank-2 panel updates of the blocked Householder tridiagonalization
/// subtract a `v`-scaled and a `w`-scaled column together; fusing the two
/// axpys halves the traffic over `out`. Each element is updated as
/// `out[i] + alpha * x[i] + beta * y[i]` (left to right), independent of
/// everything else, so results are bit-identical for every thread count.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn axpy2(alpha: f64, x: &[f64], beta: f64, y: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), out.len(), "axpy2: length mismatch {} vs {}", x.len(), out.len());
    assert_eq!(y.len(), out.len(), "axpy2: length mismatch {} vs {}", y.len(), out.len());
    for ((o, xi), yi) in out.iter_mut().zip(x).zip(y) {
        *o += alpha * xi + beta * yi;
    }
}

/// `y += alpha * x`, element-wise.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch {} vs {}", x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Multiply every element by `s`, in place.
#[inline]
pub fn scale(v: &mut [f64], s: f64) {
    for x in v {
        *x *= s;
    }
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise sum `a + b` as a new vector.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Unbiased sample variance (divides by `n - 1`); 0.0 for slices of length < 2.
pub fn variance(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean(v);
    v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (v.len() - 1) as f64
}

/// Sample standard deviation (square root of [`variance`]).
pub fn std_dev(v: &[f64]) -> f64 {
    variance(v).sqrt()
}

/// Normalize `v` to unit Euclidean norm in place.
///
/// Vectors whose norm is below `1e-300` are left untouched (a zero vector has
/// no direction); returns `false` in that case, `true` otherwise.
pub fn normalize(v: &mut [f64]) -> bool {
    let n = norm(v);
    if n < 1e-300 {
        return false;
    }
    scale(v, 1.0 / n);
    true
}

/// Index and value of the maximum element; `None` for an empty slice.
/// NaN entries are skipped.
pub fn argmax(v: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in v.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, b)) if x <= b => {}
            _ => best = Some((i, x)),
        }
    }
    best
}

/// Index and value of the minimum element; `None` for an empty slice.
/// NaN entries are skipped.
pub fn argmin(v: &[f64]) -> Option<(usize, f64)> {
    argmax(&v.iter().map(|x| -x).collect::<Vec<_>>()).map(|(i, x)| (i, -x))
}

/// Linear interpolation between `a` and `b` at parameter `t in [0,1]`.
#[inline]
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn dot4_matches_dot_value() {
        for len in [0usize, 1, 3, 4, 5, 7, 8, 17, 64, 101] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin() + 1.0).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 * 0.11).cos() - 0.5).collect();
            let plain = dot(&a, &b);
            let unrolled = dot4(&a, &b);
            assert!(
                (plain - unrolled).abs() <= 1e-12 * (1.0 + plain.abs()),
                "len {len}: {plain} vs {unrolled}"
            );
        }
    }

    #[test]
    fn dot4_is_deterministic_for_fixed_input() {
        // Same input, same bits — the unroll order is a function of the
        // length only, so repeated calls cannot drift.
        let a: Vec<f64> = (0..37).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let b: Vec<f64> = (0..37).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let first = dot4(&a, &b);
        for _ in 0..4 {
            assert_eq!(dot4(&a, &b).to_bits(), first.to_bits());
        }
    }

    #[test]
    fn axpy2_matches_two_axpys_bitwise() {
        // alpha*x and beta*y contribute via one fused expression; against
        // sequential axpys the *values* agree to rounding, and the fused
        // form itself is reproducible bit-for-bit.
        let x: Vec<f64> = (0..33).map(|i| (i as f64).sqrt()).collect();
        let y: Vec<f64> = (0..33).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut out = vec![1.0; 33];
        axpy2(2.5, &x, -0.75, &y, &mut out);
        let mut reference = vec![1.0; 33];
        for ((r, xi), yi) in reference.iter_mut().zip(&x).zip(&y) {
            *r += 2.5 * xi - 0.75 * yi;
        }
        assert_eq!(out, reference);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy2_length_mismatch_panics() {
        axpy2(1.0, &[1.0], 1.0, &[1.0, 2.0], &mut [0.0, 0.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = vec![1.0, 2.0];
        let b = vec![0.5, -0.5];
        assert_eq!(sub(&add(&a, &b), &b), a);
    }

    #[test]
    fn mean_variance_known() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        // Sample variance with n-1 denominator: sum sq dev = 32, / 7
        assert!((variance(&v) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn std_dev_is_sqrt_variance() {
        let v = [1.0, 3.0];
        assert!((std_dev(&v) - variance(&v).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        assert!(normalize(&mut v));
        assert!((norm(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        assert!(!normalize(&mut z));
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn argmax_argmin() {
        let v = [1.0, 5.0, -2.0, 5.0];
        assert_eq!(argmax(&v), Some((1, 5.0))); // first max wins
        assert_eq!(argmin(&v), Some((2, -2.0)));
        assert_eq!(argmax(&[]), None);
        let with_nan = [f64::NAN, 2.0];
        assert_eq!(argmax(&with_nan), Some((1, 2.0)));
    }

    #[test]
    fn scale_in_place() {
        let mut v = vec![1.0, -2.0];
        scale(&mut v, -3.0);
        assert_eq!(v, vec![-3.0, 6.0]);
    }

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(2.0, 10.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 10.0, 1.0), 10.0);
        assert_eq!(lerp(2.0, 10.0, 0.5), 6.0);
    }
}
