//! Free functions on `&[f64]` vectors.
//!
//! The subspace method spends most of its time on vector-level operations —
//! projecting the per-timebin traffic state vector `x` onto the normal and
//! anomalous subspaces and computing squared norms. These helpers keep that
//! code allocation-free and obvious.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length (programming error, not data error).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean norm `||v||^2`.
///
/// This is the paper's detection statistic applied to the residual vector:
/// the squared prediction error is `||x~||^2`.
#[inline]
pub fn norm_sq(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum()
}

/// Euclidean norm `||v||`.
#[inline]
pub fn norm(v: &[f64]) -> f64 {
    norm_sq(v).sqrt()
}

/// `y += alpha * x`, element-wise.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch {} vs {}", x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Multiply every element by `s`, in place.
#[inline]
pub fn scale(v: &mut [f64], s: f64) {
    for x in v {
        *x *= s;
    }
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise sum `a + b` as a new vector.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Unbiased sample variance (divides by `n - 1`); 0.0 for slices of length < 2.
pub fn variance(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean(v);
    v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (v.len() - 1) as f64
}

/// Sample standard deviation (square root of [`variance`]).
pub fn std_dev(v: &[f64]) -> f64 {
    variance(v).sqrt()
}

/// Normalize `v` to unit Euclidean norm in place.
///
/// Vectors whose norm is below `1e-300` are left untouched (a zero vector has
/// no direction); returns `false` in that case, `true` otherwise.
pub fn normalize(v: &mut [f64]) -> bool {
    let n = norm(v);
    if n < 1e-300 {
        return false;
    }
    scale(v, 1.0 / n);
    true
}

/// Index and value of the maximum element; `None` for an empty slice.
/// NaN entries are skipped.
pub fn argmax(v: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in v.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, b)) if x <= b => {}
            _ => best = Some((i, x)),
        }
    }
    best
}

/// Index and value of the minimum element; `None` for an empty slice.
/// NaN entries are skipped.
pub fn argmin(v: &[f64]) -> Option<(usize, f64)> {
    argmax(&v.iter().map(|x| -x).collect::<Vec<_>>()).map(|(i, x)| (i, -x))
}

/// Linear interpolation between `a` and `b` at parameter `t in [0,1]`.
#[inline]
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = vec![1.0, 2.0];
        let b = vec![0.5, -0.5];
        assert_eq!(sub(&add(&a, &b), &b), a);
    }

    #[test]
    fn mean_variance_known() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        // Sample variance with n-1 denominator: sum sq dev = 32, / 7
        assert!((variance(&v) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn std_dev_is_sqrt_variance() {
        let v = [1.0, 3.0];
        assert!((std_dev(&v) - variance(&v).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        assert!(normalize(&mut v));
        assert!((norm(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        assert!(!normalize(&mut z));
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn argmax_argmin() {
        let v = [1.0, 5.0, -2.0, 5.0];
        assert_eq!(argmax(&v), Some((1, 5.0))); // first max wins
        assert_eq!(argmin(&v), Some((2, -2.0)));
        assert_eq!(argmax(&[]), None);
        let with_nan = [f64::NAN, 2.0];
        assert_eq!(argmax(&with_nan), Some((1, 2.0)));
    }

    #[test]
    fn scale_in_place() {
        let mut v = vec![1.0, -2.0];
        scale(&mut v, -3.0);
        assert_eq!(v, vec![-3.0, 6.0]);
    }

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(2.0, 10.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 10.0, 1.0), 10.0);
        assert_eq!(lerp(2.0, 10.0, 0.5), 6.0);
    }
}
