//! Column centering and standardization of data matrices.
//!
//! The subspace method requires the OD-flow matrix `X` to have zero-mean
//! columns before PCA ("the multivariate mean, which for eigenflows is equal
//! to zero by construction" — §2.2 of the paper). [`Centering`] records the
//! per-column offsets/scales so new observations (streaming detection) can be
//! transformed consistently with the training data.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::vecops;

/// How each column of a data matrix was transformed.
#[derive(Debug, Clone, PartialEq)]
pub struct Centering {
    /// Per-column means subtracted from the data.
    pub means: Vec<f64>,
    /// Per-column scale divisors (all `1.0` for plain centering).
    pub scales: Vec<f64>,
}

impl Centering {
    /// Number of columns this transform applies to.
    pub fn ncols(&self) -> usize {
        self.means.len()
    }

    /// Transform a single observation (row) in place: `x[j] = (x[j] - mean[j]) / scale[j]`.
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the row length differs
    /// from the training column count.
    pub fn apply_row(&self, row: &mut [f64]) -> Result<()> {
        if row.len() != self.means.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "Centering::apply_row",
                lhs: (1, self.means.len()),
                rhs: (1, row.len()),
            });
        }
        for ((x, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.scales) {
            *x = (*x - m) / s;
        }
        Ok(())
    }

    /// Invert the transform for a single observation (row), in place.
    pub fn invert_row(&self, row: &mut [f64]) -> Result<()> {
        if row.len() != self.means.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "Centering::invert_row",
                lhs: (1, self.means.len()),
                rhs: (1, row.len()),
            });
        }
        for ((x, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.scales) {
            *x = *x * s + m;
        }
        Ok(())
    }
}

/// Subtracts the column mean from every column of `x`.
///
/// Returns the centered matrix and the [`Centering`] (with unit scales).
///
/// # Errors
///
/// [`LinalgError::Empty`] if `x` has no rows.
pub fn center_columns(x: &Matrix) -> Result<(Matrix, Centering)> {
    if x.nrows() == 0 {
        return Err(LinalgError::Empty { op: "center_columns" });
    }
    let p = x.ncols();
    let means = column_means(x);
    let mut out = x.clone();
    odflow_par::parallel_chunks(out.as_mut_slice(), CENTER_ROW_BLOCK * p.max(1), |_, rows| {
        for row in rows.chunks_exact_mut(p.max(1)) {
            for (v, &m) in row.iter_mut().zip(&means) {
                *v -= m;
            }
        }
    });
    let scales = vec![1.0; p];
    Ok((out, Centering { means, scales }))
}

/// Centers each column and divides by its sample standard deviation
/// (z-scoring). Columns with standard deviation below `1e-12` are left at
/// unit scale to avoid amplifying numerical noise — a constant OD flow
/// carries no variance signal either way.
pub fn standardize_columns(x: &Matrix) -> Result<(Matrix, Centering)> {
    if x.nrows() == 0 {
        return Err(LinalgError::Empty { op: "standardize_columns" });
    }
    let p = x.ncols();
    let means = column_means(x);
    // Per-column standard deviations, computed over parallel column blocks
    // (each block walks its own strided columns; blocks never overlap).
    let scales: Vec<f64> = odflow_par::map_chunks(p, 16, |cols| {
        cols.map(|j| {
            let col = x.col(j).expect("column index within bounds");
            let sd = vecops::std_dev(&col);
            if sd > 1e-12 {
                sd
            } else {
                1.0
            }
        })
        .collect::<Vec<f64>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let mut out = x.clone();
    odflow_par::parallel_chunks(out.as_mut_slice(), CENTER_ROW_BLOCK * p.max(1), |_, rows| {
        for row in rows.chunks_exact_mut(p.max(1)) {
            for ((v, &m), &s) in row.iter_mut().zip(&means).zip(&scales) {
                *v = (*v - m) / s;
            }
        }
    });
    Ok((out, Centering { means, scales }))
}

/// Rows per parallel block for centering passes. Fixed so the block-ordered
/// reduction in [`column_means`] is deterministic for any thread count.
/// Region dispatch goes through the persistent `odflow_par` pool (a queue
/// push per block, not a thread spawn), so the block size is chosen for
/// cache residency and load balance alone.
const CENTER_ROW_BLOCK: usize = 256;

/// Per-column arithmetic means of a matrix.
///
/// Row blocks are summed in parallel and combined in block order, so the
/// result is identical for every thread count.
pub fn column_means(x: &Matrix) -> Vec<f64> {
    let (n, p) = x.shape();
    if n == 0 || p == 0 {
        return vec![0.0; p];
    }
    let data = x.as_slice();
    let mut means = odflow_par::map_reduce(
        n,
        CENTER_ROW_BLOCK,
        |rows| {
            let mut sums = vec![0.0f64; p];
            for row in data[rows.start * p..rows.end * p].chunks_exact(p) {
                for (m, &v) in sums.iter_mut().zip(row) {
                    *m += v;
                }
            }
            sums
        },
        |mut acc, block| {
            for (a, b) in acc.iter_mut().zip(&block) {
                *a += b;
            }
            acc
        },
    )
    .expect("n > 0 checked above");
    for m in &mut means {
        *m /= n as f64;
    }
    means
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]]).unwrap()
    }

    #[test]
    fn column_means_known() {
        assert_eq!(column_means(&sample()), vec![3.0, 30.0]);
        assert_eq!(column_means(&Matrix::zeros(0, 2)), vec![0.0, 0.0]);
    }

    #[test]
    fn centering_zeroes_means() {
        let (c, t) = center_columns(&sample()).unwrap();
        let m = column_means(&c);
        assert!(m.iter().all(|&x| x.abs() < 1e-12));
        assert_eq!(t.means, vec![3.0, 30.0]);
        assert_eq!(t.scales, vec![1.0, 1.0]);
    }

    #[test]
    fn standardize_unit_variance() {
        let (z, t) = standardize_columns(&sample()).unwrap();
        for j in 0..2 {
            let col = z.col(j).unwrap();
            assert!(vecops::mean(&col).abs() < 1e-12);
            assert!((vecops::variance(&col) - 1.0).abs() < 1e-12);
        }
        assert!(t.scales[0] > 0.0);
    }

    #[test]
    fn standardize_constant_column_stays_finite() {
        let x = Matrix::from_rows(&[vec![2.0, 1.0], vec![2.0, 3.0]]).unwrap();
        let (z, t) = standardize_columns(&x).unwrap();
        assert!(z.all_finite());
        assert_eq!(t.scales[0], 1.0); // constant column: scale left at 1
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    fn apply_invert_roundtrip() {
        let (_, t) = standardize_columns(&sample()).unwrap();
        let mut row = vec![4.0, 20.0];
        let orig = row.clone();
        t.apply_row(&mut row).unwrap();
        t.invert_row(&mut row).unwrap();
        assert!((row[0] - orig[0]).abs() < 1e-12);
        assert!((row[1] - orig[1]).abs() < 1e-12);
    }

    #[test]
    fn apply_row_shape_check() {
        let (_, t) = center_columns(&sample()).unwrap();
        let mut short = vec![1.0];
        assert!(t.apply_row(&mut short).is_err());
        assert!(t.invert_row(&mut short).is_err());
        assert_eq!(t.ncols(), 2);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(center_columns(&Matrix::zeros(0, 3)).is_err());
        assert!(standardize_columns(&Matrix::zeros(0, 3)).is_err());
    }
}
