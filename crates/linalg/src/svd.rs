//! Thin singular value decomposition via the Gram-matrix eigenproblem.
//!
//! The OD-flow matrix `X` is tall and skinny (`n ≈ 2016` five-minute bins in
//! a week, `p = 121` OD pairs), so the thin SVD `X = U Σ V^T` is cheapest via
//! the `p x p` eigenproblem of `X^T X`: the right singular vectors are its
//! eigenvectors and `σ_i = sqrt(λ_i)`. This matches exactly how the paper
//! computes **eigenflows**: the normalized columns of `X V` (the left
//! singular vectors `u_i`) are the common temporal patterns, ordered by
//! captured variance.

use crate::backend::EigenMethod;
use crate::eigen::{eigen_symmetric_tridiagonal, eigen_symmetric_with, JacobiOptions};
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::vecops;

/// Thin SVD `X = U Σ V^T` of an `n x p` matrix with `n >= p` typically.
#[derive(Debug, Clone)]
pub struct Svd {
    /// `n x r` matrix of left singular vectors (columns), `r = rank kept`.
    /// For traffic matrices these are the paper's *eigenflows*.
    pub u: Matrix,
    /// Singular values, descending, length `r`.
    pub sigma: Vec<f64>,
    /// `p x r` matrix of right singular vectors (columns). Row `j` describes
    /// how OD pair `j` loads onto each eigenflow.
    pub v: Matrix,
}

impl Svd {
    /// Number of singular triplets retained.
    pub fn rank(&self) -> usize {
        self.sigma.len()
    }

    /// Reconstructs the original matrix from the retained triplets:
    /// `U Σ V^T`. Exact (to rounding) when no truncation occurred.
    pub fn reconstruct(&self) -> Result<Matrix> {
        let us = scale_cols(&self.u, &self.sigma);
        us.matmul(&self.v.transpose())
    }

    /// Reconstructs using only the top `k` triplets (rank-`k` approximation).
    pub fn reconstruct_rank(&self, k: usize) -> Result<Matrix> {
        let k = k.min(self.rank());
        let idx: Vec<usize> = (0..k).collect();
        let uk = self.u.select_cols(&idx)?;
        let vk = self.v.select_cols(&idx)?;
        let us = scale_cols(&uk, &self.sigma[..k]);
        us.matmul(&vk.transpose())
    }

    /// Fraction of total squared Frobenius mass captured by the top `k`
    /// singular values.
    pub fn energy_captured(&self, k: usize) -> f64 {
        let total: f64 = self.sigma.iter().map(|s| s * s).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.sigma.iter().take(k).map(|s| s * s).sum::<f64>() / total
    }
}

/// Multiplies column `j` of `m` by `s[j]`.
fn scale_cols(m: &Matrix, s: &[f64]) -> Matrix {
    let mut out = m.clone();
    for i in 0..out.nrows() {
        let row = out.row_mut(i).expect("row within bounds");
        for (v, &sj) in row.iter_mut().zip(s) {
            *v *= sj;
        }
    }
    out
}

/// Computes the thin SVD of `x`, dropping singular values below
/// `rel_cutoff * σ_max` (pass `0.0` to keep all `min(n, p)` triplets).
///
/// The Gram eigensolve follows [`EigenMethod::Auto`]'s dense crossover:
/// cyclic Jacobi below [`crate::AUTO_TRIDIAG_MIN_DIM`], the blocked
/// tridiagonal solver at or above it. Use [`thin_svd_with`] to pin a
/// specific dense eigensolver.
///
/// The `U = X V Σ⁻¹` column assembly fans out over the [`odflow_par`]
/// pool; each column is extracted, rescaled, and re-normalized by exactly
/// the serial arithmetic, so parallelism is fully transparent — same API,
/// and bit-identical results for every thread count:
///
/// ```
/// use odflow_linalg::{thin_svd, Matrix};
///
/// let x = Matrix::from_fn(48, 12, |i, j| ((i * 7 + j * 13) % 23) as f64 + (i + j) as f64);
/// let parallel = thin_svd(&x, 0.0).unwrap();
/// let serial = odflow_par::with_thread_limit(1, || thin_svd(&x, 0.0).unwrap());
/// assert_eq!(parallel.sigma, serial.sigma);
/// assert_eq!(parallel.u.as_slice(), serial.u.as_slice());
/// assert_eq!(parallel.v.as_slice(), serial.v.as_slice());
/// ```
///
/// # Errors
///
/// * [`LinalgError::Empty`] for matrices with zero rows or columns.
/// * [`LinalgError::NonFinite`] when `x` contains NaN/infinities.
/// * Propagates eigensolver errors (practically unreachable for finite data).
pub fn thin_svd(x: &Matrix, rel_cutoff: f64) -> Result<Svd> {
    thin_svd_with(x, rel_cutoff, EigenMethod::Auto)
}

/// [`thin_svd`] with an explicit choice of dense Gram eigensolver.
///
/// The Gram eigenproblem is dispatched through
/// [`EigenMethod::resolve_dense`]: explicit dense methods are honored
/// verbatim, while `Auto` (and the randomized method, which cannot
/// produce a full spectrum) pick cyclic Jacobi below the tridiagonal
/// crossover dimension and the blocked Householder + implicit-shift QR
/// solver at or above it. Everything downstream of the eigensolve — the
/// cutoff sweep and the `U = X V Σ⁻¹` assembly — is shared, so the two
/// dense paths differ only in eigensolver arithmetic.
///
/// ```
/// use odflow_linalg::{thin_svd_with, EigenMethod, Matrix};
///
/// let x = Matrix::from_fn(48, 12, |i, j| ((i * 7 + j * 13) % 23) as f64);
/// let jac = thin_svd_with(&x, 0.0, EigenMethod::DenseJacobi).unwrap();
/// let tri = thin_svd_with(&x, 0.0, EigenMethod::DenseTridiagonal).unwrap();
/// for (a, b) in jac.sigma.iter().zip(&tri.sigma) {
///     assert!((a - b).abs() < 1e-8 * (1.0 + a));
/// }
/// ```
///
/// # Errors
///
/// Same contract as [`thin_svd`].
pub fn thin_svd_with(x: &Matrix, rel_cutoff: f64, method: EigenMethod) -> Result<Svd> {
    if x.nrows() == 0 || x.ncols() == 0 {
        return Err(LinalgError::Empty { op: "thin_svd" });
    }
    if !x.all_finite() {
        return Err(LinalgError::NonFinite { op: "thin_svd" });
    }

    let gram = crate::cov::scatter(x)?; // X^T X, p x p
    let eig = match method.resolve_dense(x.ncols()) {
        EigenMethod::DenseTridiagonal => eigen_symmetric_tridiagonal(&gram)?,
        // resolve_dense only ever returns a dense method.
        _ => eigen_symmetric_with(&gram, JacobiOptions::default())?,
    };

    let sigma_max = eig.eigenvalues.first().copied().unwrap_or(0.0).max(0.0).sqrt();
    let cutoff = rel_cutoff * sigma_max;

    let mut sigma = Vec::new();
    let mut keep = Vec::new();
    for (i, &l) in eig.eigenvalues.iter().enumerate() {
        let s = l.max(0.0).sqrt();
        // Always keep at least one triplet so rank >= 1 for nonzero input.
        if s > cutoff || (i == 0 && s > 0.0) {
            sigma.push(s);
            keep.push(i);
        }
    }
    if keep.is_empty() {
        // All-zero input: degenerate SVD with a single zero triplet.
        return Ok(Svd {
            u: Matrix::zeros(x.nrows(), 1),
            sigma: vec![0.0],
            v: Matrix::zeros(x.ncols(), 1),
        });
    }

    let v = eig.eigenvectors.select_cols(&keep)?;

    // U = X V Σ^{-1}: extract/rescale/renormalize columns across the
    // persistent pool, one column per task — cheap at pooled dispatch
    // prices even for the small ranks the subspace method keeps. Columns
    // are independent and each runs the exact serial arithmetic, so the
    // assembly is bit-identical for any thread count (the doctest above
    // pins this); writing the columns back happens serially in column
    // order.
    let xv = x.matmul(&v)?;
    let rank = keep.len();
    let mut u = Matrix::zeros(x.nrows(), rank);
    let columns = odflow_par::map_chunks(rank, 1, |task| -> Result<Vec<f64>> {
        let jj = task.start;
        let mut col = xv.col(jj)?;
        let s = sigma[jj];
        if s > 1e-300 {
            vecops::scale(&mut col, 1.0 / s);
        }
        // Guard against drift for tiny singular values.
        vecops::normalize(&mut col);
        Ok(col)
    });
    for (jj, col) in columns.into_iter().enumerate() {
        u.set_col(jj, &col?)?;
    }

    Ok(Svd { u, sigma, v })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_matrix(n: usize, p: usize) -> Matrix {
        Matrix::from_fn(n, p, |i, j| {
            let t = i as f64 / n as f64 * std::f64::consts::TAU;
            (t * (j as f64 + 1.0)).sin() + 0.1 * ((i * 7 + j * 13) % 23) as f64
        })
    }

    #[test]
    fn reconstruction_exact_full_rank() {
        let x = data_matrix(12, 5);
        let svd = thin_svd(&x, 0.0).unwrap();
        let xr = svd.reconstruct().unwrap();
        assert!(xr.approx_eq(&x, 1e-8), "max err {}", xr.sub(&x).unwrap().max_abs());
    }

    #[test]
    fn singular_values_descending_nonnegative() {
        let x = data_matrix(30, 8);
        let svd = thin_svd(&x, 0.0).unwrap();
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(svd.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn u_and_v_orthonormal() {
        let x = data_matrix(25, 6);
        let svd = thin_svd(&x, 1e-10).unwrap();
        let utu = svd.u.transpose().matmul(&svd.u).unwrap();
        let vtv = svd.v.transpose().matmul(&svd.v).unwrap();
        let r = svd.rank();
        assert!(utu.approx_eq(&Matrix::identity(r), 1e-8));
        assert!(vtv.approx_eq(&Matrix::identity(r), 1e-8));
    }

    #[test]
    fn rank1_matrix_detected() {
        // x = a b^T exactly.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, -1.0, 0.5];
        let x = Matrix::from_fn(4, 3, |i, j| a[i] * b[j]);
        let svd = thin_svd(&x, 1e-9).unwrap();
        assert_eq!(svd.rank(), 1);
        let expected_sigma = vecops::norm(&a) * vecops::norm(&b);
        assert!((svd.sigma[0] - expected_sigma).abs() < 1e-9);
        assert!(svd.reconstruct().unwrap().approx_eq(&x, 1e-9));
    }

    #[test]
    fn low_rank_approx_monotone_error() {
        let x = data_matrix(40, 10);
        let svd = thin_svd(&x, 0.0).unwrap();
        let mut prev_err = f64::INFINITY;
        for k in 1..=svd.rank() {
            let err = svd.reconstruct_rank(k).unwrap().sub(&x).unwrap().frobenius_norm();
            assert!(err <= prev_err + 1e-9, "rank-{k} error {err} > previous {prev_err}");
            prev_err = err;
        }
        assert!(prev_err < 1e-7);
    }

    #[test]
    fn eckart_young_error_matches_tail_sigma() {
        // Frobenius error of rank-k truncation equals sqrt(sum of tail sigma^2).
        let x = data_matrix(20, 6);
        let svd = thin_svd(&x, 0.0).unwrap();
        let k = 3;
        let err = svd.reconstruct_rank(k).unwrap().sub(&x).unwrap().frobenius_norm();
        let tail: f64 = svd.sigma[k..].iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!((err - tail).abs() < 1e-8, "err {err} vs tail {tail}");
    }

    #[test]
    fn energy_captured_bounds() {
        let x = data_matrix(20, 5);
        let svd = thin_svd(&x, 0.0).unwrap();
        assert!(svd.energy_captured(0) == 0.0);
        assert!((svd.energy_captured(svd.rank()) - 1.0).abs() < 1e-12);
        assert!(svd.energy_captured(2) <= 1.0);
    }

    #[test]
    fn u_assembly_thread_invariant() {
        let x = data_matrix(64, 10);
        let serial = odflow_par::with_thread_limit(1, || thin_svd(&x, 0.0).unwrap());
        for &threads in &[2usize, 5, 16, 1000] {
            let par = odflow_par::with_thread_limit(threads, || thin_svd(&x, 0.0).unwrap());
            assert_eq!(par.sigma, serial.sigma, "threads={threads}");
            assert_eq!(par.u.as_slice(), serial.u.as_slice(), "threads={threads}");
            assert_eq!(par.v.as_slice(), serial.v.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn thin_svd_with_tridiagonal_matches_jacobi() {
        let x = data_matrix(40, 12);
        let jac = thin_svd_with(&x, 0.0, EigenMethod::DenseJacobi).unwrap();
        let tri = thin_svd_with(&x, 0.0, EigenMethod::DenseTridiagonal).unwrap();
        assert_eq!(jac.rank(), tri.rank());
        let scale = 1.0 + jac.sigma[0];
        for (a, b) in jac.sigma.iter().zip(&tri.sigma) {
            assert!((a - b).abs() < 1e-9 * scale, "sigma mismatch: {a} vs {b}");
        }
        // Reconstruction through the tridiagonal path is exact too.
        assert!(tri.reconstruct().unwrap().approx_eq(&x, 1e-8));
    }

    #[test]
    fn thin_svd_default_pins_jacobi_below_crossover() {
        // At small p the Auto dense crossover lands on Jacobi, so the
        // default entry point is bitwise-identical to the explicit choice.
        let x = data_matrix(30, 9);
        let auto = thin_svd(&x, 0.0).unwrap();
        let jac = thin_svd_with(&x, 0.0, EigenMethod::DenseJacobi).unwrap();
        assert_eq!(auto.sigma, jac.sigma);
        assert_eq!(auto.u.as_slice(), jac.u.as_slice());
        assert_eq!(auto.v.as_slice(), jac.v.as_slice());
    }

    #[test]
    fn zero_matrix_degenerate() {
        let x = Matrix::zeros(5, 3);
        let svd = thin_svd(&x, 0.0).unwrap();
        assert_eq!(svd.rank(), 1);
        assert_eq!(svd.sigma[0], 0.0);
    }

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert!(thin_svd(&Matrix::zeros(0, 3), 0.0).is_err());
        let mut x = Matrix::identity(2);
        x[(1, 1)] = f64::INFINITY;
        assert!(thin_svd(&x, 0.0).is_err());
    }
}
