//! Error types for linear-algebra operations.

use std::fmt;

/// Errors produced by `odflow-linalg` operations.
///
/// All fallible operations in this crate return [`Result<T, LinalgError>`];
/// dimension mismatches are always reported with the offending shapes so that
/// pipeline code can log actionable diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable name of the operation (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// An operation that requires a square matrix was given a rectangular one.
    NotSquare {
        /// Human-readable name of the operation.
        op: &'static str,
        /// Actual shape.
        shape: (usize, usize),
    },
    /// An operation that requires a symmetric matrix detected asymmetry
    /// beyond tolerance.
    NotSymmetric {
        /// Maximum observed `|a_ij - a_ji|`.
        max_asymmetry: f64,
    },
    /// An iterative algorithm failed to converge within its iteration budget.
    NoConvergence {
        /// Human-readable name of the algorithm.
        op: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// A matrix or vector argument was empty where data is required.
    Empty {
        /// Human-readable name of the operation.
        op: &'static str,
    },
    /// An index was out of bounds.
    OutOfBounds {
        /// Human-readable name of the operation.
        op: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound the index must satisfy.
        bound: usize,
    },
    /// Input contained NaN or infinity where finite values are required.
    NonFinite {
        /// Human-readable name of the operation.
        op: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: shape mismatch: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { op, shape } => {
                write!(f, "{op}: requires a square matrix, got {}x{}", shape.0, shape.1)
            }
            LinalgError::NotSymmetric { max_asymmetry } => {
                write!(f, "matrix is not symmetric (max |a_ij - a_ji| = {max_asymmetry:.3e})")
            }
            LinalgError::NoConvergence { op, iterations } => {
                write!(f, "{op}: failed to converge after {iterations} iterations")
            }
            LinalgError::Empty { op } => write!(f, "{op}: empty input"),
            LinalgError::OutOfBounds { op, index, bound } => {
                write!(f, "{op}: index {index} out of bounds (must be < {bound})")
            }
            LinalgError::NonFinite { op } => {
                write!(f, "{op}: input contains NaN or infinite values")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = LinalgError::ShapeMismatch { op: "matmul", lhs: (2, 3), rhs: (4, 5) };
        assert_eq!(e.to_string(), "matmul: shape mismatch: lhs is 2x3, rhs is 4x5");
    }

    #[test]
    fn display_not_square() {
        let e = LinalgError::NotSquare { op: "eigen", shape: (3, 4) };
        assert!(e.to_string().contains("requires a square matrix"));
    }

    #[test]
    fn display_no_convergence() {
        let e = LinalgError::NoConvergence { op: "jacobi", iterations: 100 };
        assert!(e.to_string().contains("failed to converge after 100"));
    }

    #[test]
    fn display_out_of_bounds_and_empty() {
        let e = LinalgError::OutOfBounds { op: "row", index: 7, bound: 5 };
        assert!(e.to_string().contains("index 7 out of bounds"));
        let e = LinalgError::Empty { op: "mean" };
        assert!(e.to_string().contains("empty input"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&LinalgError::Empty { op: "x" });
    }
}
