//! Dense linear system solving.
//!
//! Gaussian elimination with partial pivoting — used by the subspace
//! method's identification stage, which repeatedly solves small `|S| x |S|`
//! systems (reconstruction-based flow removal à la Dunia & Qin).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Solves the linear system `A x = b` by Gaussian elimination with partial
/// pivoting.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] for a rectangular `A`.
/// * [`LinalgError::ShapeMismatch`] when `b.len() != A.nrows()`.
/// * [`LinalgError::NoConvergence`] when a pivot underflows (singular or
///   numerically singular matrix).
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { op: "solve", shape: a.shape() });
    }
    let n = a.nrows();
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch { op: "solve", lhs: a.shape(), rhs: (b.len(), 1) });
    }
    if n == 0 {
        return Ok(Vec::new());
    }

    // Augmented working copy.
    let mut m = a.clone();
    let mut rhs = b.to_vec();

    let scale = m.max_abs().max(1e-300);
    for col in 0..n {
        // Partial pivot.
        let mut pivot_row = col;
        let mut pivot_val = m[(col, col)].abs();
        for r in (col + 1)..n {
            let v = m[(r, col)].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-13 * scale {
            return Err(LinalgError::NoConvergence {
                op: "solve (singular pivot)",
                iterations: col,
            });
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = m[(col, c)];
                m[(col, c)] = m[(pivot_row, c)];
                m[(pivot_row, c)] = tmp;
            }
            rhs.swap(col, pivot_row);
        }
        // Eliminate below.
        for r in (col + 1)..n {
            let f = m[(r, col)] / m[(col, col)];
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                let v = m[(col, c)];
                m[(r, c)] -= f * v;
            }
            rhs[r] -= f * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut s = rhs[row];
        for c in (row + 1)..n {
            s -= m[(row, c)] * x[c];
        }
        x[row] = s / m[(row, row)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn identity_returns_rhs() {
        let i = Matrix::identity(4);
        let b = [1.0, -2.0, 3.5, 0.0];
        assert_eq!(solve(&i, &b).unwrap(), b.to_vec());
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn residual_small_for_random_system() {
        let n = 12;
        let a = Matrix::from_fn(n, n, |i, j| {
            ((i * 31 + j * 17 + 5) % 23) as f64 / 23.0 + if i == j { 2.0 } else { 0.0 }
        });
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 4.0).collect();
        let x = solve(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-9, "residual too large: {l} vs {r}");
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(solve(&a, &[1.0, 2.0]), Err(LinalgError::NoConvergence { .. })));
    }

    #[test]
    fn shape_errors() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(solve(&a, &[1.0, 2.0]), Err(LinalgError::NotSquare { .. })));
        let sq = Matrix::identity(3);
        assert!(matches!(solve(&sq, &[1.0]), Err(LinalgError::ShapeMismatch { .. })));
    }

    #[test]
    fn empty_system() {
        let a = Matrix::zeros(0, 0);
        assert!(solve(&a, &[]).unwrap().is_empty());
    }
}
