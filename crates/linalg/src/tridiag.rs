//! Implicit Wilkinson-shift QR on a symmetric tridiagonal matrix.
//!
//! Second stage of the [`crate::eigen_symmetric_tridiagonal`] solver: given
//! the tridiagonal `(d, e)` produced by the blocked Householder reduction,
//! each QR sweep chases a bulge down the active block with a sequence of
//! Givens rotations whose shift is the Wilkinson choice (the eigenvalue of
//! the trailing 2×2 closest to the corner), deflating one eigenvalue at a
//! time with cubic local convergence (Golub & Van Loan §8.3; the classic
//! `tql2`/`dsteqr` iteration).
//!
//! The scalar recurrence on `(d, e)` is inherently serial and cheap —
//! `O(n)` per sweep. What is *not* cheap is accumulating the rotations into
//! the `n × n` eigenvector matrix, so each sweep's rotations are recorded
//! and applied in one batched, row-parallel pass ([`apply_rotations`]):
//! every matrix row replays the full rotation sequence independently
//! (LAPACK `dlasr` style), rows fan out over the pool in fixed blocks, and
//! four independent per-row chains are interleaved for instruction-level
//! parallelism. Per-row arithmetic is identical in every lane and the
//! decomposition depends only on the dimension, so eigenvectors are
//! bit-identical for every `ODFLOW_THREADS`.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Rows of the eigenvector accumulator per parallel task when replaying a
/// sweep's rotations; a multiple of the 4-row ILP interleave so chunk
/// boundaries never change which lane a row runs in (they couldn't change
/// the result anyway — lanes are arithmetically identical).
const QR_ROW_BLOCK: usize = 32;

/// Iteration budget per eigenvalue; the Wilkinson shift converges cubically
/// so real inputs take 2-3 sweeps per eigenvalue — 40 total across the
/// matrix leaves two orders of magnitude of headroom.
const QR_MAX_ITERS_PER_EIGENVALUE: usize = 40;

/// One Givens rotation in the `(i, i + 1)` plane.
#[derive(Clone, Copy)]
struct Rot {
    i: usize,
    c: f64,
    s: f64,
}

/// Diagonalizes the symmetric tridiagonal `(d, e)` in place, accumulating
/// the eigenvector transform into `z` (pass the identity to get the
/// tridiagonal eigenvectors, or the Householder `Q` basis to fold the
/// back-transform in). `e` carries the subdiagonal in `e[0..n-1]`;
/// `e[n-1]` is scratch. On success `d` holds the (unsorted) eigenvalues
/// and the columns of `z` the matching eigenvectors; returns the number of
/// QR sweeps taken.
///
/// # Errors
///
/// [`LinalgError::NoConvergence`] when the sweep budget is exhausted
/// (practically unreachable for finite symmetric input).
pub(crate) fn tridiag_qr(d: &mut [f64], e: &mut [f64], z: &mut Matrix) -> Result<usize> {
    let n = d.len();
    if n == 0 {
        return Ok(0);
    }
    debug_assert_eq!(e.len(), n);
    debug_assert_eq!(z.shape(), (n, n));
    let eps = f64::EPSILON;
    let max_total = QR_MAX_ITERS_PER_EIGENVALUE * n;
    let mut total_sweeps = 0usize;
    let mut rots: Vec<Rot> = Vec::with_capacity(n);

    for l in 0..n {
        loop {
            // Deflation scan: the first negligible subdiagonal at or after
            // l bounds the active block [l, m].
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= eps * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break; // d[l] has converged.
            }
            total_sweeps += 1;
            if total_sweeps > max_total {
                return Err(LinalgError::NoConvergence {
                    op: "tridiag_qr",
                    iterations: total_sweeps,
                });
            }

            // Wilkinson shift from the leading 2×2 of the active block,
            // folded implicitly into the first rotation.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + if g >= 0.0 { r } else { -r });
            let (mut s, mut c) = (1.0, 1.0);
            let mut p = 0.0;

            // Bulge chase from the bottom of the block up to l, recording
            // each plane rotation for the batched eigenvector replay.
            rots.clear();
            let mut underflow = false;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // The split happened mid-sweep: deflate here and
                    // restart the scan; the rotations recorded so far have
                    // real effect and are still replayed below.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                rots.push(Rot { i, c, s });
            }
            apply_rotations(z, &rots);
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(total_sweeps)
}

/// Replays one sweep's rotation sequence into every row of `z`, rows
/// fanned out over the pool in [`QR_ROW_BLOCK`] blocks.
///
/// A single row's update chain is sequentially dependent (rotation `i`
/// shares column `i + 1` with rotation `i + 1`), so four rows are
/// interleaved per pass — four independent chains keep the FMA pipeline
/// busy. Every lane runs the identical per-element expressions in the
/// identical order, so the 4-row tile and the single-row remainder produce
/// the same bits row for row.
fn apply_rotations(z: &mut Matrix, rots: &[Rot]) {
    if rots.is_empty() {
        return;
    }
    let ncols = z.ncols();
    odflow_par::parallel_chunks(z.as_mut_slice(), QR_ROW_BLOCK * ncols, |_, rows| {
        let mut quads = rows.chunks_exact_mut(4 * ncols);
        for quad in &mut quads {
            let (r0, rest) = quad.split_at_mut(ncols);
            let (r1, rest) = rest.split_at_mut(ncols);
            let (r2, r3) = rest.split_at_mut(ncols);
            for rot in rots {
                rotate_pair(r0, rot);
                rotate_pair(r1, rot);
                rotate_pair(r2, rot);
                rotate_pair(r3, rot);
            }
        }
        for row in quads.into_remainder().chunks_exact_mut(ncols) {
            for rot in rots {
                rotate_pair(row, rot);
            }
        }
    });
}

/// Applies one rotation to a row's `(i, i + 1)` column pair — the exact
/// `tql2` eigenvector update.
#[inline]
fn rotate_pair(row: &mut [f64], rot: &Rot) {
    let f = row[rot.i + 1];
    let g = row[rot.i];
    row[rot.i + 1] = rot.s * g + rot.c * f;
    row[rot.i] = rot.c * g - rot.s * f;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Solves a tridiagonal (d, e) directly, returning (eigenvalues
    /// unsorted, eigenvector matrix, sweeps).
    fn solve(d: &[f64], e: &[f64]) -> (Vec<f64>, Matrix, usize) {
        let n = d.len();
        let mut dv = d.to_vec();
        let mut ev = vec![0.0; n];
        ev[..e.len()].copy_from_slice(e);
        let mut z = Matrix::identity(n);
        let sweeps = tridiag_qr(&mut dv, &mut ev, &mut z).unwrap();
        (dv, z, sweeps)
    }

    fn tridiag_matrix(d: &[f64], e: &[f64]) -> Matrix {
        Matrix::from_fn(d.len(), d.len(), |i, j| {
            if i == j {
                d[i]
            } else if i + 1 == j || j + 1 == i {
                e[i.min(j)]
            } else {
                0.0
            }
        })
    }

    #[test]
    fn two_by_two_known() {
        // [[2, 1], [1, 2]]: eigenvalues 3 and 1.
        let (vals, z, _) = solve(&[2.0, 2.0], &[1.0]);
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert!((sorted[0] - 3.0).abs() < 1e-12);
        assert!((sorted[1] - 1.0).abs() < 1e-12);
        let ztz = z.transpose().matmul(&z).unwrap();
        assert!(ztz.approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn diagonal_input_converges_without_sweeps() {
        let (vals, z, sweeps) = solve(&[5.0, -1.0, 2.5], &[0.0, 0.0]);
        assert_eq!(vals, vec![5.0, -1.0, 2.5]);
        assert_eq!(sweeps, 0);
        assert_eq!(z.as_slice(), Matrix::identity(3).as_slice());
    }

    #[test]
    fn reconstructs_moderate_tridiagonal() {
        let n = 40;
        let d: Vec<f64> = (0..n).map(|i| 2.0 + (i as f64 * 0.7).sin()).collect();
        let e: Vec<f64> = (0..n - 1).map(|i| 0.8 * (i as f64 * 0.3).cos()).collect();
        let (vals, z, _) = solve(&d, &e);
        let a = tridiag_matrix(&d, &e);
        // A = Z diag(vals) Z^T.
        let rebuilt = z.matmul(&Matrix::from_diag(&vals)).unwrap().matmul(&z.transpose()).unwrap();
        assert!(rebuilt.approx_eq(&a, 1e-10), "max err {}", rebuilt.sub(&a).unwrap().max_abs());
        let ztz = z.transpose().matmul(&z).unwrap();
        assert!(ztz.approx_eq(&Matrix::identity(n), 1e-10));
        // Trace preserved.
        let sum: f64 = vals.iter().sum();
        let tr: f64 = d.iter().sum();
        assert!((sum - tr).abs() < 1e-9);
    }

    #[test]
    fn handles_exact_zero_subdiagonal_splits() {
        // Two independent blocks: [5] ⊕ [[1, 2], [2, 1]] → {5, 3, -1}.
        let (vals, _, _) = solve(&[5.0, 1.0, 1.0], &[0.0, 2.0]);
        let mut sorted = vals;
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert!((sorted[0] - 5.0).abs() < 1e-12);
        assert!((sorted[1] - 3.0).abs() < 1e-12);
        assert!((sorted[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        let (vals, _, sweeps) = solve(&[], &[]);
        assert!(vals.is_empty());
        assert_eq!(sweeps, 0);
        let (vals, z, _) = solve(&[7.0], &[]);
        assert_eq!(vals, vec![7.0]);
        assert_eq!(z.as_slice(), &[1.0]);
    }

    #[test]
    fn rotation_replay_is_thread_count_invariant() {
        let n = 97; // odd: exercises the non-quad remainder rows
        let d: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 13) % 7) as f64).collect();
        let e: Vec<f64> = (0..n - 1).map(|i| 0.5 + ((i * 5) % 3) as f64 * 0.1).collect();
        let run = |threads| {
            odflow_par::with_thread_limit(threads, || {
                let mut dv = d.clone();
                let mut ev = vec![0.0; n];
                ev[..e.len()].copy_from_slice(&e);
                let mut z = Matrix::identity(n);
                let sweeps = tridiag_qr(&mut dv, &mut ev, &mut z).unwrap();
                (dv, z, sweeps)
            })
        };
        let (d1, z1, s1) = run(1);
        for &threads in &[4usize, 64] {
            let (dt, zt, st) = run(threads);
            assert_eq!(dt, d1, "threads={threads}");
            assert_eq!(zt.as_slice(), z1.as_slice(), "threads={threads}");
            assert_eq!(st, s1, "threads={threads}");
        }
    }

    #[test]
    fn quad_lane_matches_single_lane_bitwise() {
        // Rows 0..3 go through the 4-row interleave when the matrix is
        // wide enough; replaying the same rotations one row at a time must
        // give identical bits.
        let n = 8;
        let rots: Vec<Rot> = (0..n - 1)
            .rev()
            .map(|i| {
                let c = (0.3 + i as f64 * 0.11).cos();
                let s = (1.0 - c * c).sqrt();
                Rot { i, c, s }
            })
            .collect();
        let base = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 7) % 11) as f64 - 5.0);
        let mut tiled = base.clone();
        apply_rotations(&mut tiled, &rots);
        let mut single = base;
        for r in 0..n {
            let row = single.row_mut(r).unwrap();
            for rot in &rots {
                rotate_pair(row, rot);
            }
        }
        assert_eq!(tiled.as_slice(), single.as_slice());
    }
}
