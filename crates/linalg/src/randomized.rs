//! Randomized truncated SVD via a Halko-style range finder.
//!
//! The dense path factors an `n x p` data matrix through the `p x p` Gram
//! eigenproblem — out of reach by design once `p` hits the large-mesh scale
//! (90 000 OD pairs would mean a 65 GB Gram matrix). But the subspace
//! method only ever needs the top `k ≈ 5-10` eigenflows, and when the data
//! is (numerically) low-rank a *randomized range finder* recovers them from
//! a handful of tall-skinny products: sketch `Y = X Ω` with a seeded
//! Gaussian `Ω`, tighten the range with a few power iterations, and solve a
//! dense eigenproblem on the tiny `(k + oversample)²` projected matrix.
//! Nothing `p x p` is ever materialized — the largest intermediates are
//! `p x (k + oversample)` panels.
//!
//! Reference: Halko, Martinsson & Tropp, *Finding Structure with
//! Randomness* (SIAM Rev. 2011), Algorithms 4.3-4.4 + 5.1. The sketching
//! route into traffic anomography follows Mardani & Giannakis's low-rank
//! tomography line: anomaly maps are recoverable from low-dimensional
//! projections without dense factorizations.
//!
//! ## Determinism
//!
//! The Gaussian sketch is drawn from a `ChaCha8Rng` seeded explicitly by
//! the caller and filled in one fixed row-major order, and every matrix
//! product runs on the `odflow_par` kernels whose reductions are combined
//! in chunk order. The whole factorization is therefore **bit-identical
//! for every thread count and every run with the same seed** — the same
//! contract as the dense Jacobi path.

use crate::eigen::eigen_symmetric;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::svd::Svd;
use crate::vecops;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Options for [`randomized_thin_svd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomizedSvdOptions {
    /// Extra sketch columns beyond the requested rank. The projected
    /// problem is `(rank + oversample)²`; 5-10 is the standard choice.
    pub oversample: usize,
    /// Power (subspace) iterations sharpening the range when the spectrum
    /// decays slowly. Each costs two tall-skinny products; 1-2 suffice for
    /// traffic matrices whose top eigenflows dominate.
    pub power_iters: usize,
    /// Seed of the ChaCha8 stream generating the Gaussian test matrix.
    pub seed: u64,
}

impl Default for RandomizedSvdOptions {
    fn default() -> Self {
        RandomizedSvdOptions { oversample: 8, power_iters: 2, seed: DEFAULT_SKETCH_SEED }
    }
}

/// Default seed of the Gaussian sketch stream (used by `Auto` backend
/// selection so unconfigured runs are reproducible).
pub const DEFAULT_SKETCH_SEED: u64 = 0x0DF1_0E16;

/// Computes a truncated thin SVD `X ≈ U Σ V^T` of an `n x p` matrix,
/// keeping (up to) the top `rank + oversample` triplets, without forming
/// any `p x p` (or `n x n`) matrix.
///
/// The first `rank` triplets carry the range-finder's accuracy guarantee;
/// the `oversample` extras are decreasingly accurate probes of the residual
/// spectrum (useful as tail estimates, e.g. for detection thresholds).
/// Triplets whose singular value falls below `1e-12 σ_max` are dropped —
/// their right singular vectors would be numerically meaningless.
///
/// # Errors
///
/// * [`LinalgError::Empty`] for matrices with zero rows/columns or
///   `rank == 0`.
/// * [`LinalgError::NonFinite`] when `x` contains NaN/infinities.
/// * Propagates eigensolver errors from the projected problem
///   (practically unreachable for finite data).
///
/// # Examples
///
/// ```
/// use odflow_linalg::{randomized_thin_svd, thin_svd, Matrix, RandomizedSvdOptions};
///
/// // Tall data with 3 dominant directions: the sketch recovers them.
/// let x = Matrix::from_fn(40, 200, |i, j| {
///     (1 + j % 3) as f64 * ((i * (1 + j % 3)) as f64 * 0.37).sin()
/// });
/// let rnd = randomized_thin_svd(&x, 3, RandomizedSvdOptions::default()).unwrap();
/// let dense = thin_svd(&x, 0.0).unwrap();
/// for i in 0..3 {
///     assert!((rnd.sigma[i] - dense.sigma[i]).abs() < 1e-6 * dense.sigma[0]);
/// }
/// ```
pub fn randomized_thin_svd(x: &Matrix, rank: usize, opts: RandomizedSvdOptions) -> Result<Svd> {
    let (n, p) = x.shape();
    if n == 0 || p == 0 || rank == 0 {
        return Err(LinalgError::Empty { op: "randomized_thin_svd" });
    }
    if !x.all_finite() {
        return Err(LinalgError::NonFinite { op: "randomized_thin_svd" });
    }

    // Sketch width: requested rank + oversampling, clamped to the exact
    // rank bound where the randomized route degenerates gracefully.
    let m = (rank + opts.oversample).clamp(1, n.min(p));

    // Y = X Ω with Ω ~ N(0, 1)^{p x m}, drawn from one seeded stream in
    // fixed row-major order (thread-count independent by construction).
    let omega = gaussian_matrix(p, m, opts.seed);
    let mut q = x.matmul(&omega)?;
    orthonormalize_columns(&mut q);

    // Power iterations Q <- orth(X orth(X^T Q)) tighten the captured range
    // toward the true top singular subspace. X^T Q is computed as
    // (Q^T X)^T so the only transposes materialized are m-wide panels.
    for _ in 0..opts.power_iters {
        let mut z = q.transpose().matmul(x)?.transpose(); // p x m
        orthonormalize_columns(&mut z);
        q = x.matmul(&z)?;
        orthonormalize_columns(&mut q);
    }

    // Project: B = Q^T X (m x p), then solve the tiny m x m eigenproblem
    // of B B^T. Eigenvalues are σ², eigenvectors rotate Q into U.
    let b = q.transpose().matmul(x)?;
    let small = b.matmul(&b.transpose())?;
    let eig = eigen_symmetric(&small)?;

    let sigma_max = eig.eigenvalues.first().copied().unwrap_or(0.0).max(0.0).sqrt();
    if sigma_max == 0.0 {
        // All-zero input (or a sketch that annihilated it): degenerate SVD,
        // mirroring `thin_svd`'s convention.
        return Ok(Svd { u: Matrix::zeros(n, 1), sigma: vec![0.0], v: Matrix::zeros(p, 1) });
    }
    let cutoff = 1e-12 * sigma_max;
    let mut sigma = Vec::new();
    let mut keep = Vec::new();
    for (i, &l) in eig.eigenvalues.iter().enumerate() {
        let s = l.max(0.0).sqrt();
        if s > cutoff {
            sigma.push(s);
            keep.push(i);
        }
    }
    let w = eig.eigenvectors.select_cols(&keep)?;

    // U = Q W (n x r): rotate the orthonormal basis onto singular order.
    let u = q.matmul(&w)?;

    // V = B^T W Σ^{-1} (p x r), re-normalized per column to absorb rounding
    // drift in the small singular values — the same guard `thin_svd` uses.
    // Under the normalization the Σ^{-1} rescale cancels analytically
    // (each raw column of B^T W has norm σ_j), so only the exact column
    // norms are applied: two row-major passes over the panel — one
    // map_reduce accumulating all r squared norms (per-column partials
    // summed in chunk order, so the reduction is deterministic) and one
    // parallel scale — instead of 2r strided per-column sweeps.
    let mut v = b.transpose().matmul(&w)?;
    let r = sigma.len();
    let vp = v.nrows();
    let data = v.as_mut_slice();
    debug_assert_eq!(data.len(), vp * r);
    let norms_sq = odflow_par::map_reduce(
        vp,
        V_COL_BLOCK,
        |rows| {
            let mut acc = vec![0.0f64; r];
            for i in rows {
                let row = &data[i * r..(i + 1) * r];
                for (a, &val) in acc.iter_mut().zip(row) {
                    *a += val * val;
                }
            }
            acc
        },
        |mut acc, block| {
            for (a, b) in acc.iter_mut().zip(&block) {
                *a += b;
            }
            acc
        },
    )
    .unwrap_or_else(|| vec![0.0; r]);
    let inv_norms: Vec<f64> = norms_sq
        .iter()
        .map(|&ns| {
            let norm = ns.sqrt();
            if norm > 1e-300 {
                1.0 / norm
            } else {
                1.0
            }
        })
        .collect();
    // Row blocks dispatch onto the persistent pool; each block applies the
    // same per-column inverse norms, so the rescale is order-free.
    odflow_par::parallel_chunks(data, V_COL_BLOCK * r, |_, rows| {
        for row in rows.chunks_exact_mut(r) {
            for (val, &inv) in row.iter_mut().zip(&inv_norms) {
                *val *= inv;
            }
        }
    });

    Ok(Svd { u, sigma, v })
}

/// Rows per parallel block when rescaling/normalizing the `p x r` right
/// singular panel; fixed so reductions are deterministic.
const V_COL_BLOCK: usize = 4096;

/// A `rows x cols` matrix of standard normal draws from one seeded ChaCha8
/// stream, filled in row-major order. Box-Muller over the shim's 53-bit
/// uniform doubles.
fn gaussian_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Matrix::zeros(rows, cols);
    let data = out.as_mut_slice();
    let mut i = 0;
    while i < data.len() {
        let (z0, z1) = box_muller(&mut rng);
        data[i] = z0;
        if i + 1 < data.len() {
            data[i + 1] = z1;
        }
        i += 2;
    }
    out
}

/// One Box-Muller pair of independent standard normals.
fn box_muller(rng: &mut impl RngCore) -> (f64, f64) {
    // u1 ∈ (0, 1]: the shim's uniform is [0, 1), so flip it to keep ln
    // finite. u2 ∈ [0, 1) is fine as an angle.
    let u1 = 1.0 - uniform_f64(rng);
    let u2 = uniform_f64(rng);
    let radius = (-2.0 * u1.ln()).sqrt();
    let angle = std::f64::consts::TAU * u2;
    (radius * angle.cos(), radius * angle.sin())
}

/// Uniform draw in [0, 1) with 53 bits of precision.
fn uniform_f64(rng: &mut impl RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Orthonormalizes the columns of `m` in place by modified Gram-Schmidt
/// with one re-orthogonalization pass. Numerically dead columns (norm
/// below `1e-12` of the largest seen) are zeroed: they contribute zero
/// rows to the projected problem and are dropped by the σ cutoff later.
fn orthonormalize_columns(m: &mut Matrix) {
    let (n, k) = m.shape();
    let mut cols: Vec<Vec<f64>> = (0..k).map(|j| m.col(j).expect("col in range")).collect();
    let mut max_norm = 0.0f64;
    for j in 0..k {
        // Two MGS passes against the already-fixed columns keep the basis
        // orthogonal to working precision even for ill-conditioned panels.
        for _ in 0..2 {
            for i in 0..j {
                let (head, tail) = cols.split_at_mut(j);
                let coeff = vecops::dot(&head[i], &tail[0]);
                vecops::axpy(-coeff, &head[i], &mut tail[0]);
            }
        }
        let norm = vecops::norm(&cols[j]);
        max_norm = max_norm.max(norm);
        if norm > 1e-12 * max_norm.max(1e-300) {
            vecops::scale(&mut cols[j], 1.0 / norm);
        } else {
            cols[j].iter_mut().for_each(|v| *v = 0.0);
        }
    }
    for (j, col) in cols.iter().enumerate() {
        m.set_col(j, col).expect("col length matches");
    }
    debug_assert_eq!(m.nrows(), n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd::thin_svd;

    fn low_rank_plus_noise(n: usize, p: usize, rank: usize, noise: f64) -> Matrix {
        Matrix::from_fn(n, p, |i, j| {
            let mut v = 0.0;
            for r in 0..rank {
                let amp = 100.0 / (1.0 + r as f64);
                v +=
                    amp * ((i * (r + 1)) as f64 * 0.21).sin() * ((j * (r + 2)) as f64 * 0.13).cos();
            }
            let mut z = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (j as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            v + noise * ((z as f64 / u64::MAX as f64) - 0.5)
        })
    }

    #[test]
    fn matches_dense_on_low_rank_data() {
        let x = low_rank_plus_noise(60, 300, 4, 1e-6);
        let rnd = randomized_thin_svd(&x, 4, RandomizedSvdOptions::default()).unwrap();
        let dense = thin_svd(&x, 0.0).unwrap();
        for i in 0..4 {
            let rel = (rnd.sigma[i] - dense.sigma[i]).abs() / dense.sigma[0];
            assert!(rel < 1e-8, "σ_{i}: randomized {} vs dense {}", rnd.sigma[i], dense.sigma[i]);
        }
    }

    #[test]
    fn wide_matrix_never_materializes_p_square() {
        // p >> n: the regime the backend exists for. Correctness is checked
        // against the dense route (still feasible at this test size).
        let x = low_rank_plus_noise(24, 900, 5, 1e-3);
        let rnd = randomized_thin_svd(&x, 5, RandomizedSvdOptions::default()).unwrap();
        let dense = thin_svd(&x, 0.0).unwrap();
        for i in 0..5 {
            let rel = (rnd.sigma[i] - dense.sigma[i]).abs() / dense.sigma[0];
            assert!(rel < 1e-6, "σ_{i} rel err {rel}");
        }
        // Top right singular vectors agree up to sign.
        for i in 0..3 {
            let a = rnd.v.col(i).unwrap();
            let b = dense.v.col(i).unwrap();
            let cosine = vecops::dot(&a, &b).abs();
            assert!(cosine > 1.0 - 1e-6, "v_{i} cosine {cosine}");
        }
    }

    #[test]
    fn u_v_orthonormal_and_sigma_sorted() {
        let x = low_rank_plus_noise(50, 240, 6, 0.5);
        let svd = randomized_thin_svd(&x, 6, RandomizedSvdOptions::default()).unwrap();
        let r = svd.rank();
        let utu = svd.u.transpose().matmul(&svd.u).unwrap();
        let vtv = svd.v.transpose().matmul(&svd.v).unwrap();
        assert!(utu.approx_eq(&Matrix::identity(r), 1e-8), "U^T U != I");
        assert!(vtv.approx_eq(&Matrix::identity(r), 1e-8), "V^T V != I");
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn same_seed_bit_identical_different_seed_close() {
        let x = low_rank_plus_noise(40, 200, 3, 1e-4);
        let opts = RandomizedSvdOptions::default();
        let a = randomized_thin_svd(&x, 3, opts).unwrap();
        let b = randomized_thin_svd(&x, 3, opts).unwrap();
        assert_eq!(a.sigma, b.sigma);
        assert_eq!(a.u.as_slice(), b.u.as_slice());
        assert_eq!(a.v.as_slice(), b.v.as_slice());

        let c = randomized_thin_svd(&x, 3, RandomizedSvdOptions { seed: 99, ..opts }).unwrap();
        for i in 0..3 {
            assert!((a.sigma[i] - c.sigma[i]).abs() < 1e-8 * a.sigma[0]);
        }
    }

    #[test]
    fn thread_count_invariant() {
        let x = low_rank_plus_noise(48, 400, 4, 0.1);
        let opts = RandomizedSvdOptions::default();
        let serial = odflow_par::with_thread_limit(1, || randomized_thin_svd(&x, 4, opts).unwrap());
        for &threads in &[2usize, 8, 64] {
            let par = odflow_par::with_thread_limit(threads, || {
                randomized_thin_svd(&x, 4, opts).unwrap()
            });
            assert_eq!(par.sigma, serial.sigma, "threads={threads}");
            assert_eq!(par.u.as_slice(), serial.u.as_slice(), "threads={threads}");
            assert_eq!(par.v.as_slice(), serial.v.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn exact_low_rank_recovered() {
        // Rank-2 exactly: the sketch captures the whole range, so the
        // reconstruction is exact to rounding.
        let x = Matrix::from_fn(30, 150, |i, j| {
            (i as f64 + 1.0) * (j as f64 * 0.1).sin() + (i as f64 * 0.3).cos() * (j as f64 + 1.0)
        });
        let svd = randomized_thin_svd(&x, 2, RandomizedSvdOptions::default()).unwrap();
        let xr = svd.reconstruct_rank(2).unwrap();
        assert!(xr.approx_eq(&x, 1e-7 * x.max_abs()), "rank-2 reconstruction off");
    }

    #[test]
    fn zero_matrix_degenerate() {
        let x = Matrix::zeros(10, 50);
        let svd = randomized_thin_svd(&x, 3, RandomizedSvdOptions::default()).unwrap();
        assert_eq!(svd.sigma, vec![0.0]);
    }

    #[test]
    fn rejects_empty_rank_zero_nonfinite() {
        let opts = RandomizedSvdOptions::default();
        assert!(randomized_thin_svd(&Matrix::zeros(0, 5), 2, opts).is_err());
        assert!(randomized_thin_svd(&Matrix::zeros(5, 0), 2, opts).is_err());
        assert!(randomized_thin_svd(&Matrix::identity(4), 0, opts).is_err());
        let mut x = Matrix::identity(4);
        x[(2, 2)] = f64::NAN;
        assert!(randomized_thin_svd(&x, 2, opts).is_err());
    }

    #[test]
    fn gaussian_sketch_has_sane_moments() {
        let g = gaussian_matrix(200, 50, 7);
        let data = g.as_slice();
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / data.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
        assert!(data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn orthonormalize_handles_dependent_columns() {
        // Third column is the sum of the first two: it must be zeroed, not
        // turned into NaNs.
        let mut m = Matrix::from_fn(6, 3, |i, j| match j {
            0 => (i as f64 + 1.0).sin(),
            1 => (i as f64 + 1.0).cos(),
            _ => (i as f64 + 1.0).sin() + (i as f64 + 1.0).cos(),
        });
        orthonormalize_columns(&mut m);
        assert!(m.all_finite());
        let c2 = m.col(2).unwrap();
        assert!(vecops::norm(&c2) < 1e-9, "dependent column should be zeroed");
        let c0 = m.col(0).unwrap();
        let c1 = m.col(1).unwrap();
        assert!(vecops::dot(&c0, &c1).abs() < 1e-10);
        assert!((vecops::norm(&c0) - 1.0).abs() < 1e-10);
    }
}
