//! End-to-end experiment runner: scenario → measurement → detection →
//! classification → scoring.
//!
//! This is the orchestration layer the paper's evaluation implies: render a
//! (synthetic) week of sampled flow records, push them through the exact
//! measurement path of §2.1, run the subspace method of §2.2-§3 on all
//! three traffic views, aggregate and classify anomalies per §4, and score
//! the result against the generator's ground truth. Both the runnable
//! examples and the table/figure benches build on [`run_scenario`].

use odflow_classify::{
    classify, AnomalyClass, AnomalyObservation, RuleConfig, ScoredEvent, TruthLabel,
};
use odflow_flow::{
    AttributeDigest, DataQuality, OdResolution, OdResolver, PipelineConfig, RepairPolicy,
    ResolutionStats, TrafficMatrixSet, TrafficType,
};
use odflow_gen::{FaultSchedule, FaultStormStats, Scenario, TraceGenerator};
use odflow_linalg::Matrix;
use odflow_net::IngressResolver;
use odflow_subspace::{
    diagnose, diagnose_with_quality, Analysis, AnomalyEvent, BinVerdict, Diagnosis, SubspaceConfig,
    SubspaceDetector,
};

/// Configuration of a full experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Subspace method parameters (the paper: `k = 4`, `α = 0.001`).
    pub subspace: SubspaceConfig,
    /// Classification rule thresholds (the paper: dominance `p = 0.2`).
    pub rules: RuleConfig,
    /// Bins of tolerance when matching detections to ground truth.
    pub match_slack: usize,
    /// Half-width (in bins) of the local window used to estimate an
    /// event's baseline volume.
    pub baseline_window: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            subspace: SubspaceConfig::default(),
            rules: RuleConfig::default(),
            match_slack: 2,
            baseline_window: 24,
        }
    }
}

/// A classified anomaly event.
#[derive(Debug, Clone)]
pub struct ClassifiedEvent {
    /// The detected/merged event.
    pub event: AnomalyEvent,
    /// Class assigned by the Table 2 rule engine.
    pub class: AnomalyClass,
    /// Rule-engine evidence strings.
    pub evidence: Vec<String>,
    /// Volume ratio (event / local baseline) used by the rules.
    pub volume_ratio: f64,
}

/// The complete result of one scenario run.
#[derive(Debug)]
pub struct ScenarioRun {
    /// The three OD traffic matrices.
    pub matrices: TrafficMatrixSet,
    /// OD resolution statistics (the paper's ≥93% / ≥90% claim).
    pub resolution: ResolutionStats,
    /// Detection output for all three traffic views.
    pub diagnosis: Diagnosis,
    /// Final classified events.
    pub classified: Vec<ClassifiedEvent>,
    /// Ground truth labels from the generator.
    pub truth: Vec<TruthLabel>,
}

impl ScenarioRun {
    /// The classified events in `ScoredEvent` form for
    /// [`odflow_classify::score_events`].
    pub fn scored_events(&self) -> Vec<ScoredEvent> {
        self.classified
            .iter()
            .map(|c| ScoredEvent {
                label: c.class.label().to_string(),
                start_bin: c.event.start_bin,
                end_bin: c.event.end_bin(),
                od_flows: c.event.od_flows.clone(),
            })
            .collect()
    }
}

/// Runs the full pipeline over one scenario.
///
/// # Errors
///
/// Returns a boxed error for measurement or detection failures; individual
/// event classifications degrade to `Unknown` rather than failing the run.
pub fn run_scenario(
    scenario: &Scenario,
    config: &ExperimentConfig,
) -> Result<ScenarioRun, Box<dyn std::error::Error>> {
    let generator = scenario.generator();

    // §2.1: the measurement path — the fused generate→bin engine renders
    // each shard's bin range straight into its per-thread OD binners (no
    // intermediate record batches) and merges deterministically; the
    // result is bit-identical to the serial record-by-record pipeline for
    // any `ODFLOW_THREADS`.
    let routes = scenario.plan.build_route_table(1.0)?;
    let ingress = IngressResolver::synthetic(&scenario.topology);
    let mut pipe_cfg =
        PipelineConfig::abilene(scenario.config.start_secs, scenario.config.num_bins);
    // Honor the scenario's bin width (the abilene preset pins the paper's
    // 300 s): a mismatched window would misroute shard-local records.
    pipe_cfg.bin_secs = scenario.config.bin_secs;
    let outcome = generator.bin_scenario(pipe_cfg, ingress, routes)?;
    let (matrices, resolution) = (outcome.matrices, outcome.stats);

    // §2.2-§3: subspace detection on all three views; §4 step 1-2: merge.
    let diagnosis = diagnose(&matrices, config.subspace)?;

    // §4 step 3: classify each event.
    let mut classified = Vec::with_capacity(diagnosis.events.len());
    for event in &diagnosis.events {
        let c = classify_event(scenario, &generator, &matrices, event, config);
        classified.push(c);
    }

    let truth = truth_labels(scenario);
    Ok(ScenarioRun { matrices, resolution, diagnosis, classified, truth })
}

/// The complete result of one fault-storm scenario run.
#[derive(Debug)]
pub struct FaultedScenarioRun {
    /// Everything [`run_scenario`] produces, computed through the
    /// degradation-aware path.
    pub run: ScenarioRun,
    /// The ingest path's quality report (quarantine, exporter gaps,
    /// per-bin status after repair).
    pub quality: DataQuality,
    /// The fault engine's own accounting of what it injected.
    pub storm: FaultStormStats,
    /// Per-bin quality verdicts from the detection stage.
    pub verdicts: Vec<BinVerdict>,
    /// `true` when the SPE band was widened by heavy imputation.
    pub widened: bool,
}

impl FaultedScenarioRun {
    /// Bins whose verdicts were withheld (masked by repair).
    pub fn masked_bins(&self) -> Vec<usize> {
        self.quality.masked_bins()
    }
}

/// [`run_scenario`] under a deterministic fault storm: renders each bin as
/// NetFlow v5 wire frames, mutates them through `faults`, ingests via the
/// lossy quarantine-and-account path, repairs short outages under
/// `policy`, and runs the quality-aware diagnosis (masked bins are never
/// scored; heavy imputation widens the SPE band).
///
/// Bit-identical for any `ODFLOW_THREADS`: the render→fault→decode stage
/// is serial by construction, and both the record fill and the scoring
/// stage use fixed-grain chunk decompositions.
///
/// # Errors
///
/// As for [`run_scenario`].
pub fn run_scenario_faulted(
    scenario: &Scenario,
    config: &ExperimentConfig,
    faults: &FaultSchedule,
    policy: RepairPolicy,
) -> Result<FaultedScenarioRun, Box<dyn std::error::Error>> {
    let generator = scenario.generator();

    let routes = scenario.plan.build_route_table(1.0)?;
    let ingress = IngressResolver::synthetic(&scenario.topology);
    let mut pipe_cfg =
        PipelineConfig::abilene(scenario.config.start_secs, scenario.config.num_bins);
    pipe_cfg.bin_secs = scenario.config.bin_secs;
    let (outcome, storm) =
        generator.bin_scenario_faulted(pipe_cfg, ingress, routes, faults, policy)?;
    let (matrices, resolution, quality) = (outcome.matrices, outcome.stats, outcome.quality);

    let qd = diagnose_with_quality(&matrices, config.subspace, &quality)?;

    let mut classified = Vec::with_capacity(qd.diagnosis.events.len());
    for event in &qd.diagnosis.events {
        let c = classify_event(scenario, &generator, &matrices, event, config);
        classified.push(c);
    }

    let truth = truth_labels(scenario);
    Ok(FaultedScenarioRun {
        run: ScenarioRun { matrices, resolution, diagnosis: qd.diagnosis, classified, truth },
        quality,
        storm,
        verdicts: qd.verdicts,
        widened: qd.widened,
    })
}

/// Fits a subspace model to one traffic matrix and scores every bin — the
/// detection stage of [`run_scenario`] in isolation.
///
/// The eigen-backend comes from `config.method`: with the default
/// [`odflow_subspace::EigenMethod::Auto`] this runs the exact dense solver
/// at the paper's scale and the randomized truncated solver at large-mesh
/// scale (90 000 OD pairs), never materializing a `p x p` matrix. This is
/// what the `large_mesh_detect` perf stage times.
///
/// # Errors
///
/// Propagates model-fitting errors (shape, degeneracy, backend numerics).
pub fn detect_matrix(
    x: &Matrix,
    config: SubspaceConfig,
) -> Result<Analysis, Box<dyn std::error::Error>> {
    Ok(SubspaceDetector::new(config).analyze(x)?)
}

/// Maps the generator's schedule into scoring labels.
pub fn truth_labels(scenario: &Scenario) -> Vec<TruthLabel> {
    let n = scenario.topology.num_pops();
    scenario
        .schedule
        .iter()
        .map(|a| TruthLabel {
            label: a.kind.label().to_string(),
            start_bin: a.start_bin,
            end_bin: a.end_bin(),
            od_flows: a.od_pairs.iter().map(|&(o, d)| o * n + d).collect(),
        })
        .collect()
}

/// Builds the observation for one event and runs the rule engine.
fn classify_event(
    scenario: &Scenario,
    generator: &TraceGenerator<'_>,
    matrices: &TrafficMatrixSet,
    event: &AnomalyEvent,
    config: &ExperimentConfig,
) -> ClassifiedEvent {
    let n = scenario.topology.num_pops();

    // Measure selection mirrors the rule engine's priority.
    let measure = if event.types.contains(TrafficType::Flows) {
        TrafficType::Flows
    } else if event.types.contains(TrafficType::Packets) {
        TrafficType::Packets
    } else {
        TrafficType::Bytes
    };

    let mut volume_ratio = event_volume_ratio(matrices, event, measure, config.baseline_window);
    let mut counterpart_spike = volume_ratio < 1.0
        && has_counterpart_spike(matrices, event, measure, config.baseline_window, n);

    // The ingress-shift signature often lands *inside* one event: the
    // identification stage implicates both the drained OD flows and the
    // flows receiving the moved traffic, so the aggregate ratio washes out
    // near 1. Per-flow ratios expose the dip+spike mixture directly.
    if event.od_flows.len() >= 2 {
        let per_flow: Vec<f64> = event
            .od_flows
            .iter()
            .map(|&od| {
                ratio_for_flows(
                    matrices,
                    &[od],
                    event.start_bin,
                    event.end_bin(),
                    measure,
                    config.baseline_window,
                )
            })
            .collect();
        let min = per_flow.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_flow.iter().copied().fold(0.0f64, f64::max);
        // Thresholds are deliberately forgiving: for multi-bin shifts the
        // local baseline window overlaps the anomaly itself, compressing
        // both ratios toward 1.
        if min < 0.55 && max > 1.25 {
            volume_ratio = min;
            counterpart_spike = true;
        }
    }

    // Rebuild the raw flows behind the event (bin-addressable generator) and
    // digest only the records that resolve into the event's OD flows.
    let digest = event_digest(scenario, generator, event);

    let origins: std::collections::HashSet<usize> =
        event.od_flows.iter().map(|od| od / n).collect();

    let obs = AnomalyObservation {
        types: event.types,
        duration_bins: event.duration_bins,
        num_od_flows: event.od_flows.len(),
        multi_origin: origins.len() > 1,
        volume_ratio,
        counterpart_spike,
        digest,
    };

    match classify(&obs, &config.rules) {
        Ok(c) => ClassifiedEvent {
            event: event.clone(),
            class: c.class,
            evidence: c.evidence,
            volume_ratio,
        },
        Err(e) => ClassifiedEvent {
            event: event.clone(),
            class: AnomalyClass::Unknown,
            evidence: vec![format!("classification error: {e}")],
            volume_ratio,
        },
    }
}

/// Mean traffic of the event's OD flows during the event, over the local
/// baseline (the same flows in the surrounding window, event bins
/// excluded). Returns 1.0 when nothing can be estimated.
fn event_volume_ratio(
    matrices: &TrafficMatrixSet,
    event: &AnomalyEvent,
    measure: TrafficType,
    window: usize,
) -> f64 {
    ratio_for_flows(matrices, &event.od_flows, event.start_bin, event.end_bin(), measure, window)
}

fn ratio_for_flows(
    matrices: &TrafficMatrixSet,
    flows: &[usize],
    start: usize,
    end: usize,
    measure: TrafficType,
    window: usize,
) -> f64 {
    if flows.is_empty() {
        return 1.0;
    }
    let m = &matrices.get(measure).data;
    let n = m.nrows();
    let mut event_sum = 0.0;
    let mut event_cells = 0usize;
    for bin in start..=end.min(n - 1) {
        for &od in flows {
            if od < m.ncols() {
                event_sum += m[(bin, od)];
                event_cells += 1;
            }
        }
    }
    let mut base_sum = 0.0;
    let mut base_cells = 0usize;
    let lo = start.saturating_sub(window);
    let hi = (end + window).min(n - 1);
    for bin in lo..=hi {
        if bin >= start && bin <= end {
            continue;
        }
        for &od in flows {
            if od < m.ncols() {
                base_sum += m[(bin, od)];
                base_cells += 1;
            }
        }
    }
    if event_cells == 0 || base_cells == 0 {
        return 1.0;
    }
    let event_mean = event_sum / event_cells as f64;
    let base_mean = base_sum / base_cells as f64;
    if base_mean <= 0.0 {
        // No baseline traffic at all: a spike from zero.
        return if event_mean > 0.0 { f64::INFINITY } else { 1.0 };
    }
    event_mean / base_mean
}

/// For a dipped event: does some other OD flow sharing a destination with a
/// dipped flow spike simultaneously? (The ingress-shift signature.)
fn has_counterpart_spike(
    matrices: &TrafficMatrixSet,
    event: &AnomalyEvent,
    measure: TrafficType,
    window: usize,
    num_pops: usize,
) -> bool {
    let dipped_dests: std::collections::BTreeSet<usize> =
        event.od_flows.iter().map(|od| od % num_pops).collect();
    for dest in dipped_dests {
        for origin in 0..num_pops {
            let od = origin * num_pops + dest;
            if event.od_flows.contains(&od) {
                continue;
            }
            let r =
                ratio_for_flows(matrices, &[od], event.start_bin, event.end_bin(), measure, window);
            if r.is_finite() && r > 1.5 {
                return true;
            }
        }
    }
    false
}

/// Digest of the raw flows behind an event: regenerates the event's bins
/// and keeps records resolving into the event's OD flows.
fn event_digest(
    scenario: &Scenario,
    generator: &TraceGenerator<'_>,
    event: &AnomalyEvent,
) -> AttributeDigest {
    let mut digest = AttributeDigest::new();
    let Ok(routes) = scenario.plan.build_route_table(1.0) else {
        return digest;
    };
    let ingress = IngressResolver::synthetic(&scenario.topology);
    let mut resolver = OdResolver::new(&scenario.topology, ingress, routes, true);
    for bin in event.start_bin..=event.end_bin() {
        if bin >= generator.num_bins() {
            break;
        }
        for mut record in generator.records_for_bin(bin) {
            record.key = record.key.with_anonymized_dst();
            if let OdResolution::Resolved { od_index } = resolver.resolve(&record) {
                if event.od_flows.contains(&od_index) {
                    digest.add(&record);
                }
            }
        }
    }
    digest
}
