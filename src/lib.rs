//! # odflow — network-wide traffic anomaly detection via the subspace
//! method
//!
//! A faithful, from-scratch reproduction of **Lakhina, Crovella & Diot,
//! "Characterization of Network-Wide Anomalies in Traffic Flows"**
//! (IMC 2004 / BUCS-TR-2004-020) as a production-quality Rust workspace:
//!
//! * [`net`] — the Abilene-like backbone: topology, ISIS-style SPF,
//!   BGP+config egress resolution, 11-bit destination anonymization.
//! * [`flow`] — the measurement substrate: 1% packet sampling, per-minute
//!   5-tuple aggregation, NetFlow-v5-style export codec, OD resolution,
//!   and 5-minute binning into the three traffic views (#bytes, #packets,
//!   #IP-flows).
//! * [`gen`] — a deterministic whole-network traffic generator with
//!   labeled injections of every anomaly class in the paper's Table 2.
//! * [`linalg`] / [`stats`] — self-contained numerics: Jacobi
//!   eigendecomposition, thin SVD, and the Q-statistic / T² thresholds.
//! * [`subspace`] — the core contribution: eigenflows, the `k = 4`
//!   normal/anomalous split, SPE + T² detection, OD-flow identification,
//!   and B/P/F event merging.
//! * [`classify`] — the Table 2 rule engine with the `p = 0.2` dominance
//!   heuristic and ground-truth scoring.
//! * [`experiment`] — the end-to-end runner used by the examples and by
//!   the bench harness that regenerates every table and figure.
//!
//! ## Quickstart
//!
//! ```no_run
//! use odflow::experiment::{run_scenario, ExperimentConfig};
//! use odflow::gen::Scenario;
//!
//! let scenario = Scenario::paper_week(42, 0).unwrap();
//! let run = run_scenario(&scenario, &ExperimentConfig::default()).unwrap();
//! println!(
//!     "{} anomaly events, {:.1}% of flows resolved",
//!     run.classified.len(),
//!     run.resolution.flow_rate() * 100.0
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;

/// Re-export of the scoped thread-pool substrate (`ODFLOW_THREADS`,
/// deterministic fork/join parallelism).
pub use odflow_par as par;

/// Re-export of the dense linear-algebra substrate.
pub use odflow_linalg as linalg;

/// Re-export of the statistics substrate (distributions, thresholds).
pub use odflow_stats as stats;

/// Re-export of the network substrate (topology, routing, addressing).
pub use odflow_net as net;

/// Re-export of the flow measurement substrate.
pub use odflow_flow as flow;

/// Re-export of the synthetic traffic generator.
pub use odflow_gen as gen;

/// Re-export of the subspace method (the paper's core contribution).
pub use odflow_subspace as subspace;

/// Re-export of the anomaly classification engine.
pub use odflow_classify as classify;
