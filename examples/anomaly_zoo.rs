//! The anomaly zoo: one canonical instance of every Table 2 class,
//! injected into quiet weeks and pushed through detection +
//! classification. Prints the paper-style signature of each.
//!
//! ```sh
//! cargo run --release --example anomaly_zoo
//! ```

#![forbid(unsafe_code)]

use odflow::experiment::{run_scenario, ExperimentConfig};
use odflow::gen::{AnomalyKind, InjectedAnomaly, ScanMode, Scenario, ScenarioConfig};

fn inject(kind: AnomalyKind) -> InjectedAnomaly {
    let (od, intensity, port, duration, ppf, shift_to) = match kind {
        AnomalyKind::Alpha => (vec![(1, 6)], 4000.0, 5001, 2, 0.0, None),
        AnomalyKind::Dos => (vec![(2, 9)], 700.0, 0, 3, 2.0, None),
        AnomalyKind::Ddos => (vec![(0, 9), (3, 9), (5, 9)], 1500.0, 113, 3, 2.0, None),
        AnomalyKind::FlashCrowd => (vec![(4, 8)], 420.0, 80, 2, 3.0, None),
        AnomalyKind::Scan => (vec![(5, 2)], 500.0, 139, 2, 0.0, None),
        AnomalyKind::Worm => (vec![(0, 3), (1, 3), (6, 3)], 900.0, 1433, 3, 0.0, None),
        AnomalyKind::PointMultipoint => (vec![(2, 10)], 9000.0, 119, 2, 0.0, None),
        AnomalyKind::Outage => (
            vec![(6, 0), (6, 1), (6, 2), (6, 3), (0, 6), (1, 6), (2, 6), (3, 6)],
            0.0,
            0,
            36,
            0.0,
            None,
        ),
        AnomalyKind::IngressShift => {
            (vec![(6, 0), (6, 1), (6, 2), (6, 4)], 0.0, 0, 24, 0.0, Some(8))
        }
    };
    InjectedAnomaly {
        id: 1,
        kind,
        start_bin: 1000,
        duration_bins: duration,
        od_pairs: od,
        intensity,
        port,
        scan_mode: ScanMode::Network,
        shift_to,
        packets_per_flow: ppf,
        packet_bytes: 0,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kinds = [
        AnomalyKind::Alpha,
        AnomalyKind::Dos,
        AnomalyKind::Ddos,
        AnomalyKind::FlashCrowd,
        AnomalyKind::Scan,
        AnomalyKind::Worm,
        AnomalyKind::PointMultipoint,
        AnomalyKind::Outage,
        AnomalyKind::IngressShift,
    ];
    println!(
        "{:<18} {:<5} {:<9} {:<5} {:<16}",
        "injected", "views", "duration", "#OD", "classified as"
    );
    for kind in kinds {
        let anomaly = inject(kind);
        let config =
            ScenarioConfig { seed: 0x200 ^ kind.label().len() as u64, ..Default::default() };
        let scenario = Scenario::new(config, vec![anomaly.clone()])?;
        let run = run_scenario(&scenario, &ExperimentConfig::default())?;
        let hit = run
            .classified
            .iter()
            .filter(|c| (anomaly.start_bin..=anomaly.end_bin() + 2).any(|b| c.event.covers_bin(b)))
            .max_by_key(|c| c.event.duration_bins);
        match hit {
            Some(c) => println!(
                "{:<18} {:<5} {:<9} {:<5} {:<16}  {}",
                kind.label(),
                c.event.types.code(),
                format!("{}m", c.event.duration_minutes(300)),
                c.event.od_flows.len(),
                c.class.label(),
                c.evidence.first().cloned().unwrap_or_default()
            ),
            None => println!("{:<18} (not detected)", kind.label()),
        }
    }
    Ok(())
}
