//! Quickstart: detect and classify anomalies in one day of synthetic
//! Abilene traffic.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

#![forbid(unsafe_code)]

use odflow::experiment::{run_scenario, ExperimentConfig};
use odflow::gen::{AnomalyKind, InjectedAnomaly, ScanMode, Scenario, ScenarioConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One day of 5-minute bins over the 11-PoP Abilene topology, with a
    // denial-of-service flood injected mid-afternoon.
    let dos = InjectedAnomaly {
        id: 1,
        kind: AnomalyKind::Dos,
        start_bin: 190, // ~15:50
        duration_bins: 3,
        od_pairs: vec![(2, 9)], // DNVR -> STTL
        intensity: 800.0,
        port: 0,
        scan_mode: ScanMode::Network,
        shift_to: None,
        packets_per_flow: 2.0,
        packet_bytes: 0,
    };
    let config = ScenarioConfig { seed: 7, num_bins: 288, ..Default::default() };
    let scenario = Scenario::new(config, vec![dos])?;

    // Render the traffic, run the full measurement + subspace + taxonomy
    // pipeline of the paper.
    let run = run_scenario(&scenario, &ExperimentConfig::default())?;

    println!(
        "measured {} OD pairs over {} bins; {:.1}% of flows resolved to OD pairs",
        run.matrices.num_od_pairs(),
        run.matrices.num_bins(),
        run.resolution.flow_rate() * 100.0
    );
    println!("{} anomaly event(s) detected:\n", run.classified.len());
    for c in &run.classified {
        println!(
            "  bins {:>3}-{:<3} views {:<3} class {:<13} volume x{:<6.1} flows {:?}",
            c.event.start_bin,
            c.event.end_bin(),
            c.event.types.code(),
            c.class.label(),
            c.volume_ratio,
            c.event
                .od_flows
                .iter()
                .map(|&od| scenario.topology.od_label(od).unwrap_or_default())
                .collect::<Vec<_>>()
        );
        for e in &c.evidence {
            println!("        evidence: {e}");
        }
    }
    Ok(())
}
