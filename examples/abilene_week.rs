//! A full paper week: render, measure, detect, classify, and score one of
//! the four study weeks end to end — the complete §2-§4 pipeline.
//!
//! ```sh
//! cargo run --release --example abilene_week
//! ```

#![forbid(unsafe_code)]

use odflow::classify::score_events;
use odflow::experiment::{run_scenario, ExperimentConfig};
use odflow::flow::TrafficType;
use odflow::gen::Scenario;
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::paper_week(42, 0)?;
    println!(
        "scenario: {} bins x {} OD pairs, {} injected anomalies",
        scenario.config.num_bins,
        scenario.topology.num_od_pairs(),
        scenario.schedule.len()
    );

    // lint:allow(no-ambient-nondeterminism) -- wall-clock timing printed for the operator, never fed into results
    let t0 = std::time::Instant::now();
    let run = run_scenario(&scenario, &ExperimentConfig::default())?;
    println!("pipeline completed in {:.1}s", t0.elapsed().as_secs_f64());

    println!(
        "\nOD resolution: {:.1}% of flows, {:.1}% of bytes (paper: >93% / >90%)",
        run.resolution.flow_rate() * 100.0,
        run.resolution.byte_rate() * 100.0
    );

    for t in [TrafficType::Bytes, TrafficType::Packets, TrafficType::Flows] {
        let an = run.diagnosis.analysis(t).expect("analysis");
        let d = an.model.decomposition();
        println!(
            "{t:>8}: top-4 eigenflows capture {:.1}% of variance; SPE thr {:.3e}; T2 thr {:.2}; {} bins flagged",
            d.variance_captured(4) * 100.0,
            an.model.spe_threshold(),
            an.model.t2_threshold(),
            an.anomalous_bins().len()
        );
    }

    let mut by_class: BTreeMap<&str, usize> = BTreeMap::new();
    for c in &run.classified {
        *by_class.entry(c.class.table3_group()).or_insert(0) += 1;
    }
    println!("\nclassified events: {by_class:?}");

    let report = score_events(&run.truth, &run.scored_events(), 2);
    println!(
        "vs ground truth: recall {:.2}, precision {:.2}, class accuracy {:.2}",
        report.recall(),
        report.precision(),
        report.classification_accuracy()
    );
    Ok(())
}
