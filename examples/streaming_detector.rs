//! Online detection — the paper's §6 "practical, online diagnosis" goal.
//!
//! A collector task (one `scoped_pool` worker) renders live 5-minute bins
//! and feeds state vectors to a shared online detector (trained on the
//! preceding day); the main thread consumes verdicts. A DOS flood appears
//! mid-stream and is flagged within its first bin.
//!
//! ```sh
//! cargo run --release --example streaming_detector
//! ```

#![forbid(unsafe_code)]

use odflow::flow::{MeasurementPipeline, PipelineConfig, TrafficType};
use odflow::gen::{AnomalyKind, InjectedAnomaly, ScanMode, Scenario, ScenarioConfig};
use odflow::net::IngressResolver;
use odflow::subspace::{OnlineDetector, SharedOnlineDetector, SubspaceConfig};

fn matrices_for(scenario: &Scenario) -> odflow::flow::TrafficMatrixSet {
    let generator = scenario.generator();
    let routes = scenario.plan.build_route_table(1.0).expect("routes");
    let ingress = IngressResolver::synthetic(&scenario.topology);
    let cfg = PipelineConfig::abilene(scenario.config.start_secs, scenario.config.num_bins);
    let mut pipeline =
        MeasurementPipeline::new(cfg, &scenario.topology, ingress, routes).expect("pipeline");
    for bin in 0..generator.num_bins() {
        for r in generator.records_for_bin(bin) {
            pipeline.push_sampled_record(r).expect("push");
        }
    }
    pipeline.finalize().expect("finalize").0
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Day 1: clean training traffic.
    let train_cfg = ScenarioConfig { seed: 31, num_bins: 288, ..Default::default() };
    let training = matrices_for(&Scenario::new(train_cfg, vec![])?);

    // Day 2: live traffic with a DOS flood at bin 140.
    let dos = InjectedAnomaly {
        id: 1,
        kind: AnomalyKind::Dos,
        start_bin: 140,
        duration_bins: 2,
        od_pairs: vec![(3, 8)],
        intensity: 900.0,
        port: 0,
        scan_mode: ScanMode::Network,
        shift_to: None,
        packets_per_flow: 2.0,
        packet_bytes: 0,
    };
    let live_cfg = ScenarioConfig {
        seed: 32,
        num_bins: 288,
        start_secs: 288 * 300, // continue the clock into day 2
        ..Default::default()
    };
    let live = matrices_for(&Scenario::new(live_cfg, vec![dos])?);

    // Train on the flows view and share the detector across threads.
    let detector =
        OnlineDetector::new(&training.get(TrafficType::Flows).data, SubspaceConfig::default(), 0)?;
    let shared = SharedOnlineDetector::new(detector);
    let (spe_thr, t2_thr) = shared.thresholds();
    println!("trained on day 1; thresholds: SPE {spe_thr:.3e}, T2 {t2_thr:.2}");

    let (tx, rx) = std::sync::mpsc::sync_channel(16);
    // One pool worker plays the collector; `Pool::scoped` joins it (and
    // re-throws any panic) before returning, so the closures may borrow
    // `shared` and the live matrices directly — no clones, no raw spawn.
    let pool = scoped_pool::Pool::new(1);
    let mut alarms = 0;
    pool.scoped(|scope| {
        let shared = &shared;
        let flows = &live.get(TrafficType::Flows).data;
        scope.execute(move || {
            for bin in 0..flows.nrows() {
                let row = flows.row(bin).expect("row");
                let verdict = shared.push(row).expect("push");
                if verdict.is_anomalous() {
                    tx.send(verdict).expect("send");
                }
            }
            // `tx` drops here, ending the `rx.iter()` loop below.
        });
        for verdict in &rx {
            alarms += 1;
            println!(
                "ALARM at live bin {:>3}: SPE {:>10.1} T2 {:>6.2} ({} statistic(s) fired)",
                verdict.bin,
                verdict.spe,
                verdict.t2,
                verdict.detections.len()
            );
        }
    });

    println!("\n{alarms} alarm(s) over {} live bins", shared.bins_seen());
    assert!(alarms >= 1, "the DOS flood must be caught online");
    println!("DOS flood at bins 140-141 caught online");
    Ok(())
}
