//! The packet-level measurement path, end to end and on the wire:
//! per-packet observations -> 1% Bernoulli sampling -> per-minute 5-tuple
//! aggregation -> NetFlow-v5-style export datagrams -> decode -> 11-bit
//! destination anonymization -> ingress/egress OD resolution -> 5-minute
//! traffic matrices. This is §2.1 of the paper as running code, including
//! the wire format round-trip.
//!
//! ```sh
//! cargo run --release --example netflow_pipeline
//! ```

#![forbid(unsafe_code)]

use odflow::flow::{
    netflow, FlowAggregator, FlowKey, OdBinner, OdResolution, OdResolver, PacketObs, PacketSampler,
    Protocol,
};
use odflow::net::{AddressPlan, IngressResolver, Topology};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = Topology::abilene();
    let plan = AddressPlan::synthetic(&topology);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);

    // --- Stage 1: raw packets at the routers (30 minutes of traffic). ---
    let horizon = 1800u64;
    let mut packets = Vec::new();
    for origin in 0..topology.num_pops() {
        for flow in 0..120 {
            let dest = (origin + 1 + flow % (topology.num_pops() - 1)) % topology.num_pops();
            let key = FlowKey::new(
                plan.customer_addr(origin, flow % 4, rng.gen()),
                plan.customer_addr(dest, flow % 4, rng.gen()),
                rng.gen_range(1024..=65000),
                [80u16, 443, 53, 25][flow % 4],
                Protocol::Tcp,
            );
            let n_packets = rng.gen_range(50..2500);
            for _ in 0..n_packets {
                packets.push(PacketObs::new(
                    rng.gen_range(0..horizon),
                    origin,
                    0,
                    key,
                    [40u32, 576, 1500][rng.gen_range(0..3)],
                ));
            }
        }
    }
    packets.sort_by_key(|p| p.ts);
    println!("stage 1: {} packets offered at {} routers", packets.len(), topology.num_pops());

    // --- Stage 2: 1% sampling + per-minute aggregation. ---
    let mut sampler = PacketSampler::new(0.01, 7)?;
    let mut aggregator = FlowAggregator::new(60, 60)?;
    let mut records = Vec::new();
    for p in &packets {
        if sampler.sample() {
            records.extend(aggregator.push(p));
        }
    }
    records.extend(aggregator.flush());
    let (observed, sampled) = sampler.counters();
    println!(
        "stage 2: sampled {sampled}/{observed} packets ({:.2}%), {} flow records",
        sampled as f64 / observed as f64 * 100.0,
        records.len()
    );

    // --- Stage 3: NetFlow v5 wire round-trip. ---
    let datagrams = netflow::encode_datagrams(&records, 0, 0, 100, 0);
    let wire_bytes: usize = datagrams.iter().map(bytes::Bytes::len).sum();
    let mut decoded = Vec::new();
    for d in &datagrams {
        decoded.extend(netflow::decode_datagram(d)?.1);
    }
    assert_eq!(decoded.len(), records.len(), "wire round-trip must be lossless");
    println!(
        "stage 3: {} datagrams, {wire_bytes} bytes on the wire, round-trip lossless",
        datagrams.len()
    );

    // --- Stage 4: anonymize + resolve to OD pairs + bin. ---
    let routes = plan.build_route_table(1.0)?;
    let ingress = IngressResolver::synthetic(&topology);
    let mut resolver = OdResolver::new(&topology, ingress, routes, true);
    let mut binner = OdBinner::new(0, 300, (horizon / 300) as usize, topology.num_od_pairs())?;
    for mut r in decoded {
        r.key = r.key.with_anonymized_dst();
        if let OdResolution::Resolved { od_index } = resolver.resolve(&r) {
            binner.push(od_index, &r)?;
        }
    }
    let stats = resolver.stats();
    let matrices = binner.finalize()?;
    println!(
        "stage 4: {:.1}% of flows resolved ({:.1}% of bytes); {} x {} traffic matrices",
        stats.flow_rate() * 100.0,
        stats.byte_rate() * 100.0,
        matrices.num_bins(),
        matrices.num_od_pairs()
    );

    let totals = matrices.packets.totals();
    println!("packets per 5-minute bin: {totals:?}");
    println!("pipeline complete: packets -> NetFlow wire -> OD traffic matrices");
    Ok(())
}
